//! The protocol job-graph layer: full RLWE protocol ops served through
//! the batch-forming fleet.
//!
//! ```text
//!  submit_protocol(job) ──► proto queue ──► graph executor threads
//!                                             │ host ops (sampling,
//!                                             │ additions, hashing)
//!                                             ▼
//!                              leaf NTT multiplies ──► batch former
//!                                                       (shared with
//!                                                        submit /
//!                                                        submit_wide)
//! ```
//!
//! A typed [`ProtocolJob`] (KeyGen / PKE-Enc/Dec / Encaps / Decaps /
//! SHE-Mul / Sign / Verify — plus the trivial one-node `Mul` and k-lane
//! `WideMul` graphs that re-express the raw lanes on the same
//! substrate) compiles into a small DAG of NTT-multiply nodes joined by
//! cheap host ops, all implemented in `crates/rlwe` against the
//! pluggable [`PolyMultiplier`] trait. The graph executor runs the host
//! ops inline and routes every multiply node through the ordinary
//! `(n, q)` batch former as a leaf job, so:
//!
//! * **Cross-tenant batching** — inner products of *different* protocol
//!   ops (different tenants, different kinds) pack into the same
//!   hardware batches whenever their rings match, and the independent
//!   product pairs inside one op ([`PolyMultiplier::multiply_pair`])
//!   are admitted under one lock so they ride one batch together.
//! * **Hot-operand reuse** — repeated public keys and evaluation keys
//!   hit the fleet-wide transform cache exactly like hot `a` operands
//!   of raw multiplies.
//! * **Per-node fault isolation** — each multiply node inherits the
//!   [`CheckPolicy`](cryptopim::check::CheckPolicy) retry/quarantine
//!   machinery individually: a detected fault retries *one node*, not
//!   the whole protocol op, and a terminal node failure surfaces as
//!   [`ServiceError::ProtocolNode`] naming the node (mirroring
//!   [`ServiceError::WideLane`]).
//!
//! **Correctness contract.** The graph layer changes *where* multiplies
//! execute, never *what* they compute: the executor drives the exact
//! `crates/rlwe` code paths through a service-backed multiplier whose
//! products are bit-identical to the direct engine path, so every
//! protocol output equals the direct `crates/rlwe` execution of the
//! same inputs for any fleet size or arrival order. `tests/protocol.rs`
//! pins this per kind across fleet sizes {1, 2, 4}.

use crate::error::ServiceError;
use crate::scheduler::{self, Service, Shared};
use modmath::crt::RnsBasis;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use rlwe::kem::{self, Encapsulated, KemKeyPair, MESSAGE_BITS};
use rlwe::pke::{Ciphertext, KeyPair, PublicKey, SecretKey};
use rlwe::sampling;
use rlwe::serialize;
use rlwe::she::HomCiphertext;
use rlwe::signature::{Signature, SigningKey, VerifyKey};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The protocol kinds servable through
/// [`Service::submit_protocol`]. The discriminant doubles as the wire
/// code of the `SubmitProtocol` frame and as the per-kind stats index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ProtocolKind {
    /// One raw negacyclic product — [`Service::submit`] re-expressed as
    /// a trivial one-node graph.
    Mul = 0,
    /// One wide (RNS-decomposed) product — [`Service::submit_wide`]
    /// re-expressed as a k-lane graph.
    WideMul = 1,
    /// RLWE PKE key generation (1 multiply).
    KeyGen = 2,
    /// PKE encryption (2 independent multiplies).
    PkeEncrypt = 3,
    /// PKE decryption (1 multiply).
    PkeDecrypt = 4,
    /// KEM encapsulation (2 independent multiplies).
    Encaps = 5,
    /// KEM decapsulation with the FO re-encryption check (3 multiplies).
    Decaps = 6,
    /// Somewhat-homomorphic plaintext product (2 independent
    /// multiplies).
    SheMul = 7,
    /// GLP signing with rejection sampling (3 multiplies per attempt).
    Sign = 8,
    /// GLP verification (2 independent multiplies).
    Verify = 9,
}

impl ProtocolKind {
    /// Number of kinds (stats lanes).
    pub const COUNT: usize = 10;

    /// Every kind, in discriminant order.
    pub const ALL: [ProtocolKind; ProtocolKind::COUNT] = [
        ProtocolKind::Mul,
        ProtocolKind::WideMul,
        ProtocolKind::KeyGen,
        ProtocolKind::PkeEncrypt,
        ProtocolKind::PkeDecrypt,
        ProtocolKind::Encaps,
        ProtocolKind::Decaps,
        ProtocolKind::SheMul,
        ProtocolKind::Sign,
        ProtocolKind::Verify,
    ];

    /// Stable snake_case name (stats keys, CLI mix specs).
    pub fn as_str(self) -> &'static str {
        match self {
            ProtocolKind::Mul => "mul",
            ProtocolKind::WideMul => "wide_mul",
            ProtocolKind::KeyGen => "keygen",
            ProtocolKind::PkeEncrypt => "pke_enc",
            ProtocolKind::PkeDecrypt => "pke_dec",
            ProtocolKind::Encaps => "encaps",
            ProtocolKind::Decaps => "decaps",
            ProtocolKind::SheMul => "she_mul",
            ProtocolKind::Sign => "sign",
            ProtocolKind::Verify => "verify",
        }
    }

    /// The kind at stats-lane `index`.
    pub fn from_index(index: usize) -> Option<ProtocolKind> {
        ProtocolKind::ALL.get(index).copied()
    }

    /// Decodes a wire code (the discriminant).
    pub fn from_u8(code: u8) -> Option<ProtocolKind> {
        ProtocolKind::from_index(code as usize)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed protocol op, compiled by the graph executor into NTT-multiply
/// leaf nodes plus host ops.
#[derive(Debug, Clone)]
pub enum ProtocolJob {
    /// Raw product `a · b` (one-node graph).
    Mul {
        /// Left operand.
        a: Polynomial,
        /// Right operand.
        b: Polynomial,
    },
    /// Wide product over `Q = Π q_i` (k-lane graph).
    WideMul {
        /// Left operand (coefficients below the basis modulus).
        a: Vec<u128>,
        /// Right operand.
        b: Vec<u128>,
        /// The residue basis.
        basis: RnsBasis,
    },
    /// Generate a PKE key pair.
    KeyGen {
        /// Ring parameters.
        params: ParamSet,
        /// Sampling seed.
        seed: u64,
    },
    /// Encrypt `bits` under `pk`.
    PkeEncrypt {
        /// Recipient public key.
        pk: PublicKey,
        /// Message bits (≤ n).
        bits: Vec<u8>,
        /// Encryption-randomness seed.
        seed: u64,
    },
    /// Decrypt `ct` under `sk`.
    PkeDecrypt {
        /// Recipient secret key.
        sk: SecretKey,
        /// The ciphertext.
        ct: Ciphertext,
    },
    /// Encapsulate a fresh shared secret to `pk`.
    Encaps {
        /// Recipient public key.
        pk: PublicKey,
        /// Message-choice entropy.
        entropy: u64,
    },
    /// Decapsulate `ct` (FO re-encryption check, implicit rejection).
    Decaps {
        /// The recipient's KEM key pair.
        keys: Box<KemKeyPair>,
        /// The ciphertext.
        ct: Ciphertext,
    },
    /// Homomorphic plaintext product `ct · plain`.
    SheMul {
        /// The homomorphic ciphertext.
        ct: HomCiphertext,
        /// The public plaintext polynomial.
        plain: Polynomial,
    },
    /// Sign `message` (Fiat–Shamir with aborts).
    Sign {
        /// The signing key.
        key: Box<SigningKey>,
        /// The message.
        message: Vec<u8>,
        /// Masking-randomness seed.
        seed: u64,
    },
    /// Verify `signature` over `message`.
    Verify {
        /// The verification key.
        key: VerifyKey,
        /// The message.
        message: Vec<u8>,
        /// The signature.
        signature: Signature,
    },
}

/// The typed result of a protocol op.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolOutput {
    /// [`ProtocolJob::Mul`]: the product.
    Product(Polynomial),
    /// [`ProtocolJob::WideMul`]: the recombined wide product.
    WideProduct(Vec<u128>),
    /// [`ProtocolJob::KeyGen`]: the generated pair.
    KeyPair(Box<KeyPair>),
    /// [`ProtocolJob::PkeEncrypt`]: the ciphertext.
    Ciphertext(Ciphertext),
    /// [`ProtocolJob::PkeDecrypt`]: the recovered bits.
    Bits(Vec<u8>),
    /// [`ProtocolJob::Encaps`]: ciphertext plus sender secret.
    Encapsulated(Encapsulated),
    /// [`ProtocolJob::Decaps`]: the recovered shared secret.
    SharedSecret([u8; kem::SHARED_SECRET_BYTES]),
    /// [`ProtocolJob::SheMul`]: the product ciphertext.
    SheCiphertext(HomCiphertext),
    /// [`ProtocolJob::Sign`]: the signature and how many
    /// rejection-sampling attempts it took.
    Signature {
        /// The accepted signature.
        signature: Signature,
        /// Rejection-sampling attempts (1 = accepted first try).
        sign_attempts: u32,
    },
    /// [`ProtocolJob::Verify`]: whether the signature verified.
    Verdict(bool),
}

impl ProtocolOutput {
    /// A 64-bit FNV-1a digest over the output's canonical byte encoding
    /// — what the TCP front end returns in `ProtocolDone` frames so
    /// remote clients can bit-compare a served op against a local
    /// reference without shipping megabytes of polynomials.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &byte in bytes {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        match self {
            ProtocolOutput::Product(p) => {
                eat(&[1]);
                eat(&serialize::polynomial_to_bytes(p));
            }
            ProtocolOutput::WideProduct(v) => {
                eat(&[2]);
                for &c in v {
                    eat(&c.to_le_bytes());
                }
            }
            ProtocolOutput::KeyPair(kp) => {
                // Public half only: the digest may travel over the wire
                // and must not become a secret-key oracle.
                eat(&[3]);
                eat(&serialize::polynomial_to_bytes(kp.public().a()));
                eat(&serialize::polynomial_to_bytes(kp.public().b()));
            }
            ProtocolOutput::Ciphertext(ct) => {
                eat(&[4]);
                eat(&serialize::ciphertext_to_bytes(ct));
            }
            ProtocolOutput::Bits(bits) => {
                eat(&[5]);
                eat(bits);
            }
            ProtocolOutput::Encapsulated(enc) => {
                eat(&[6]);
                eat(&serialize::ciphertext_to_bytes(&enc.ciphertext));
                eat(&enc.shared_secret);
            }
            ProtocolOutput::SharedSecret(ss) => {
                eat(&[7]);
                eat(ss);
            }
            ProtocolOutput::SheCiphertext(hc) => {
                eat(&[8]);
                eat(&serialize::ciphertext_to_bytes(hc.inner()));
                eat(&hc.additions.to_le_bytes());
            }
            ProtocolOutput::Signature {
                signature,
                sign_attempts,
            } => {
                eat(&[9]);
                eat(&serialize::polynomial_to_bytes(signature.z1()));
                eat(&serialize::polynomial_to_bytes(signature.z2()));
                eat(signature.challenge());
                eat(&sign_attempts.to_le_bytes());
            }
            ProtocolOutput::Verdict(ok) => {
                eat(&[10, u8::from(*ok)]);
            }
        }
        h
    }
}

/// A fulfilled protocol op, returned by [`ProtocolTicket::wait`].
#[derive(Debug, Clone)]
pub struct ProtocolCompleted {
    /// The typed output, bit-identical to the direct `crates/rlwe`
    /// execution of the same job.
    pub output: ProtocolOutput,
    /// NTT-multiply leaf nodes the op compiled into (Sign counts every
    /// rejection-sampling attempt's nodes).
    pub nodes: u32,
    /// Worst per-node execution attempts (1 = every node clean on its
    /// first try; > 1 means some node recovered from a detected fault).
    pub attempts: u32,
    /// Time from submission to a graph executor picking the op up, µs.
    pub queue_us: f64,
    /// End-to-end op time (submit → output ready), µs.
    pub service_us: f64,
}

#[derive(Debug)]
pub(crate) struct ProtoTicketState {
    slot: Mutex<Option<Result<ProtocolCompleted, ServiceError>>>,
    done: Condvar,
}

/// Handle to one submitted protocol op. Obtain the result with
/// [`ProtocolTicket::wait`].
#[derive(Debug)]
pub struct ProtocolTicket {
    state: Arc<ProtoTicketState>,
}

impl ProtocolTicket {
    /// Blocks until the op completes, returning the typed output and
    /// its latency breakdown (or the typed failure).
    pub fn wait(self) -> Result<ProtocolCompleted, ServiceError> {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot).expect("ticket poisoned");
        }
    }

    /// Blocks for at most `timeout`, returning the completed op or
    /// [`ServiceError::WaitTimeout`]. Borrows the ticket, so a
    /// timed-out wait can be retried later — same contract as
    /// [`crate::JobTicket::wait_timeout`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<ProtocolCompleted, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServiceError::WaitTimeout {
                    timeout_ms: timeout.as_millis() as u64,
                });
            }
            slot = self
                .state
                .done
                .wait_timeout(slot, remaining)
                .expect("ticket poisoned")
                .0;
        }
    }

    /// Whether the op has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().expect("ticket poisoned").is_some()
    }
}

/// One queued protocol op.
pub(crate) struct ProtoTask {
    job: ProtocolJob,
    kind: ProtocolKind,
    ticket: Arc<ProtoTicketState>,
    submitted: Instant,
}

impl ProtocolJob {
    /// The job's kind (stats lane, wire code).
    pub fn kind(&self) -> ProtocolKind {
        match self {
            ProtocolJob::Mul { .. } => ProtocolKind::Mul,
            ProtocolJob::WideMul { .. } => ProtocolKind::WideMul,
            ProtocolJob::KeyGen { .. } => ProtocolKind::KeyGen,
            ProtocolJob::PkeEncrypt { .. } => ProtocolKind::PkeEncrypt,
            ProtocolJob::PkeDecrypt { .. } => ProtocolKind::PkeDecrypt,
            ProtocolJob::Encaps { .. } => ProtocolKind::Encaps,
            ProtocolJob::Decaps { .. } => ProtocolKind::Decaps,
            ProtocolJob::SheMul { .. } => ProtocolKind::SheMul,
            ProtocolJob::Sign { .. } => ProtocolKind::Sign,
            ProtocolJob::Verify { .. } => ProtocolKind::Verify,
        }
    }

    /// The `(n, q)` ring the job's multiply nodes run under (the first
    /// lane's ring for wide jobs).
    pub fn ring(&self) -> (usize, u64) {
        match self {
            ProtocolJob::Mul { a, .. } => (a.degree_bound(), a.modulus()),
            ProtocolJob::WideMul { a, basis, .. } => {
                (a.len(), basis.moduli().first().copied().unwrap_or(0))
            }
            ProtocolJob::KeyGen { params, .. } => (params.n, params.q),
            ProtocolJob::PkeEncrypt { pk, .. } => (pk.params().n, pk.params().q),
            ProtocolJob::PkeDecrypt { sk, .. } => (sk.params().n, sk.params().q),
            ProtocolJob::Encaps { pk, .. } => (pk.params().n, pk.params().q),
            ProtocolJob::Decaps { keys, .. } => {
                (keys.public().params().n, keys.public().params().q)
            }
            ProtocolJob::SheMul { ct, .. } => (ct.inner().u.degree_bound(), ct.inner().u.modulus()),
            ProtocolJob::Sign { key, .. } => (key.params().n, key.params().q),
            ProtocolJob::Verify { key, .. } => (key.params().n, key.params().q),
        }
    }

    /// Synchronous admission validation: every ring the job's multiply
    /// nodes will run under must have an accelerator configuration, and
    /// host-op preconditions that would otherwise panic (KEM message
    /// capacity) or fail deep inside the executor are checked here.
    fn validate(&self) -> Result<(), ServiceError> {
        match self {
            ProtocolJob::Mul { a, b } => {
                scheduler::validate_leaf(a, b)?;
            }
            ProtocolJob::WideMul { a, b, basis } => {
                if a.len() != b.len() {
                    return Err(ServiceError::PairMismatch {
                        left: a.len(),
                        right: b.len(),
                    });
                }
                for &q in basis.moduli() {
                    if scheduler::params_for(a.len(), q).is_none() {
                        return Err(ServiceError::UnsupportedJob { n: a.len(), q });
                    }
                }
            }
            ProtocolJob::SheMul { ct: _, plain } => {
                let (n, q) = self.ring();
                if plain.degree_bound() != n {
                    return Err(ServiceError::PairMismatch {
                        left: n,
                        right: plain.degree_bound(),
                    });
                }
                if plain.modulus() != q || scheduler::params_for(n, q).is_none() {
                    return Err(ServiceError::UnsupportedJob { n, q });
                }
            }
            ProtocolJob::Encaps { .. } | ProtocolJob::Decaps { .. } => {
                let (n, q) = self.ring();
                if scheduler::params_for(n, q).is_none() {
                    return Err(ServiceError::UnsupportedJob { n, q });
                }
                if n < MESSAGE_BITS {
                    return Err(ServiceError::ProtocolHost {
                        detail: format!("ring degree {n} below the {MESSAGE_BITS}-bit KEM message"),
                    });
                }
            }
            _ => {
                let (n, q) = self.ring();
                if scheduler::params_for(n, q).is_none() {
                    return Err(ServiceError::UnsupportedJob { n, q });
                }
            }
        }
        Ok(())
    }

    /// Builds a deterministic, self-contained job of `kind` at degree
    /// `n` from `seed`: keys, messages, and ciphertexts are derived
    /// host-side with the software NTT (bit-identical to the engine),
    /// so the same `(kind, n, seed)` triple always denotes the same op.
    /// This is what the TCP `SubmitProtocol` frame and the protocol
    /// loadgen speak: a scenario reference small enough for the wire.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnsupportedJob`] when `n` has no paper parameter
    /// set; [`ServiceError::ProtocolHost`] when the degree cannot carry
    /// the kind (KEM kinds below 256) or scenario construction fails.
    pub fn scripted(kind: ProtocolKind, n: usize, seed: u64) -> Result<ProtocolJob, ServiceError> {
        let params =
            ParamSet::for_degree(n).map_err(|_| ServiceError::UnsupportedJob { n, q: 0 })?;
        let host = |e: rlwe::RlweError| ServiceError::ProtocolHost {
            detail: format!("scripted scenario construction failed: {e}"),
        };
        let ntt = NttMultiplier::new(&params).map_err(|e| host(e.into()))?;
        if matches!(kind, ProtocolKind::Encaps | ProtocolKind::Decaps) && n < MESSAGE_BITS {
            return Err(ServiceError::ProtocolHost {
                detail: format!("ring degree {n} below the {MESSAGE_BITS}-bit KEM message"),
            });
        }
        let bits = |salt: u64| -> Vec<u8> {
            (0..n)
                .map(|i| {
                    let x = (i as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(seed ^ salt);
                    ((x >> 32) & 1) as u8
                })
                .collect()
        };
        let message = seed.to_be_bytes().to_vec();
        Ok(match kind {
            ProtocolKind::Mul => {
                let mut rng = sampling::seeded_rng(seed);
                let a = sampling::uniform(&params, &mut rng);
                let b = sampling::uniform(&params, &mut rng);
                ProtocolJob::Mul { a, b }
            }
            ProtocolKind::WideMul => {
                let basis =
                    RnsBasis::discover(n, 2, 1 << 20).map_err(|e| ServiceError::ProtocolHost {
                        detail: format!("no wide basis at n = {n}: {e}"),
                    })?;
                let big_q = basis.modulus();
                let mut x = seed ^ 0x5DEECE66D;
                let mut draw = || {
                    // splitmix64 per coefficient, reduced below Q.
                    let mut next = || {
                        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                        let mut z = x;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                        z ^ (z >> 31)
                    };
                    ((u128::from(next()) << 64) | u128::from(next())) % big_q
                };
                let a: Vec<u128> = (0..n).map(|_| draw()).collect();
                let b: Vec<u128> = (0..n).map(|_| draw()).collect();
                ProtocolJob::WideMul { a, b, basis }
            }
            ProtocolKind::KeyGen => ProtocolJob::KeyGen { params, seed },
            ProtocolKind::PkeEncrypt => {
                let keys = KeyPair::generate(&params, &ntt, seed).map_err(host)?;
                ProtocolJob::PkeEncrypt {
                    pk: keys.public().clone(),
                    bits: bits(1),
                    seed: seed.wrapping_add(2),
                }
            }
            ProtocolKind::PkeDecrypt => {
                let keys = KeyPair::generate(&params, &ntt, seed).map_err(host)?;
                let ct = keys
                    .public()
                    .encrypt_bits(&bits(1), &ntt, seed.wrapping_add(2))
                    .map_err(host)?;
                ProtocolJob::PkeDecrypt {
                    sk: keys.secret().clone(),
                    ct,
                }
            }
            ProtocolKind::Encaps => {
                let keys = KemKeyPair::generate(&params, &ntt, seed).map_err(host)?;
                ProtocolJob::Encaps {
                    pk: keys.public().clone(),
                    entropy: seed.wrapping_add(3),
                }
            }
            ProtocolKind::Decaps => {
                let keys = KemKeyPair::generate(&params, &ntt, seed).map_err(host)?;
                let enc =
                    kem::encapsulate(keys.public(), &ntt, seed.wrapping_add(3)).map_err(host)?;
                ProtocolJob::Decaps {
                    keys: Box::new(keys),
                    ct: enc.ciphertext,
                }
            }
            ProtocolKind::SheMul => {
                let keys = KeyPair::generate(&params, &ntt, seed).map_err(host)?;
                let ct = rlwe::she::encrypt(&keys, &bits(1), &ntt, seed.wrapping_add(4))
                    .map_err(host)?;
                // Sparse public polynomial: 1 + x^5 + x^(n/2).
                let mut pc = vec![0u64; n];
                pc[0] = 1;
                pc[5 % n] = 1;
                pc[n / 2] = 1;
                let plain = Polynomial::from_coeffs(pc, params.q).map_err(|e| host(e.into()))?;
                ProtocolJob::SheMul { ct, plain }
            }
            ProtocolKind::Sign => {
                let key = SigningKey::generate(&params, &ntt, seed).map_err(host)?;
                ProtocolJob::Sign {
                    key: Box::new(key),
                    message,
                    seed: seed.wrapping_add(5),
                }
            }
            ProtocolKind::Verify => {
                let key = SigningKey::generate(&params, &ntt, seed).map_err(host)?;
                let (signature, _) = key
                    .sign(&message, &ntt, seed.wrapping_add(5))
                    .map_err(host)?;
                ProtocolJob::Verify {
                    key: key.verify_key(),
                    message,
                    signature,
                }
            }
        })
    }

    /// Executes the job directly on the host with the software NTT —
    /// the bit-identity oracle the proptests, the protocol loadgen, and
    /// the CI smoke gates compare served outputs against.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnsupportedJob`] when a ring has no parameter
    /// set; [`ServiceError::ProtocolHost`] when the rlwe op itself
    /// fails.
    pub fn run_direct(&self) -> Result<ProtocolOutput, ServiceError> {
        let (n, q) = self.ring();
        let host = |e: rlwe::RlweError| ServiceError::ProtocolHost {
            detail: format!("direct execution failed: {e}"),
        };
        let mult_for = |n: usize, q: u64| -> Result<NttMultiplier, ServiceError> {
            let params =
                scheduler::params_for(n, q).ok_or(ServiceError::UnsupportedJob { n, q })?;
            NttMultiplier::new(&params).map_err(|_| ServiceError::UnsupportedJob { n, q })
        };
        Ok(match self {
            ProtocolJob::Mul { a, b } => {
                let ntt = mult_for(n, q)?;
                ProtocolOutput::Product(ntt.multiply(a, b).map_err(|e| host(e.into()))?)
            }
            ProtocolJob::WideMul { a, b, basis } => {
                // Sequential residue loop: split, multiply, recombine.
                let mut lanes: Vec<Vec<u64>> = Vec::with_capacity(basis.channels());
                let mut buf = vec![0u64; n];
                for (lane, &lane_q) in basis.moduli().iter().enumerate() {
                    let ntt = mult_for(n, lane_q)?;
                    basis.split_lane_into(a, lane, &mut buf);
                    let pa = Polynomial::from_canonical_coeffs(buf.clone(), lane_q)
                        .expect("residues are canonical mod q");
                    basis.split_lane_into(b, lane, &mut buf);
                    let pb = Polynomial::from_canonical_coeffs(buf.clone(), lane_q)
                        .expect("residues are canonical mod q");
                    let prod = ntt.multiply(&pa, &pb).map_err(|e| host(e.into()))?;
                    lanes.push(prod.coeffs().to_vec());
                }
                let lane_refs: Vec<&[u64]> = lanes.iter().map(Vec::as_slice).collect();
                let mut out = vec![0u128; n];
                basis.combine_into(&lane_refs, &mut out);
                ProtocolOutput::WideProduct(out)
            }
            ProtocolJob::KeyGen { params, seed } => {
                let ntt = mult_for(params.n, params.q)?;
                ProtocolOutput::KeyPair(Box::new(
                    KeyPair::generate(params, &ntt, *seed).map_err(host)?,
                ))
            }
            ProtocolJob::PkeEncrypt { pk, bits, seed } => {
                let ntt = mult_for(n, q)?;
                ProtocolOutput::Ciphertext(pk.encrypt_bits(bits, &ntt, *seed).map_err(host)?)
            }
            ProtocolJob::PkeDecrypt { sk, ct } => {
                let ntt = mult_for(n, q)?;
                ProtocolOutput::Bits(sk.decrypt_bits(ct, &ntt).map_err(host)?)
            }
            ProtocolJob::Encaps { pk, entropy } => {
                let ntt = mult_for(n, q)?;
                ProtocolOutput::Encapsulated(kem::encapsulate(pk, &ntt, *entropy).map_err(host)?)
            }
            ProtocolJob::Decaps { keys, ct } => {
                let ntt = mult_for(n, q)?;
                ProtocolOutput::SharedSecret(keys.decapsulate(ct, &ntt).map_err(host)?)
            }
            ProtocolJob::SheMul { ct, plain } => {
                let ntt = mult_for(n, q)?;
                ProtocolOutput::SheCiphertext(ct.mul_plaintext(plain, &ntt).map_err(host)?)
            }
            ProtocolJob::Sign { key, message, seed } => {
                let ntt = mult_for(n, q)?;
                let (signature, sign_attempts) = key.sign(message, &ntt, *seed).map_err(host)?;
                ProtocolOutput::Signature {
                    signature,
                    sign_attempts,
                }
            }
            ProtocolJob::Verify {
                key,
                message,
                signature,
            } => {
                let ntt = mult_for(n, q)?;
                ProtocolOutput::Verdict(key.verify(message, signature, &ntt).map_err(host)?)
            }
        })
    }
}

impl Service {
    /// Submits a typed protocol op; the returned ticket resolves to the
    /// op's typed output once a graph executor has driven its multiply
    /// nodes through the batch-forming fleet and finished the host ops.
    ///
    /// # Errors
    ///
    /// Synchronously: [`ServiceError::UnsupportedJob`] /
    /// [`ServiceError::PairMismatch`] when some node's ring has no
    /// accelerator configuration, [`ServiceError::ProtocolHost`] for
    /// host-op preconditions (e.g. a KEM ring below 256), and
    /// [`ServiceError::ShuttingDown`] during drain. Asynchronously (via
    /// the ticket): [`ServiceError::ProtocolNode`] attributing a
    /// terminal node failure, or [`ServiceError::ProtocolHost`].
    pub fn submit_protocol(&self, job: ProtocolJob) -> Result<ProtocolTicket, ServiceError> {
        submit_protocol_shared(self.shared_ref(), job)
    }
}

pub(crate) fn submit_protocol_shared(
    shared: &Arc<Shared>,
    job: ProtocolJob,
) -> Result<ProtocolTicket, ServiceError> {
    job.validate()?;
    let kind = job.kind();
    let ticket = Arc::new(ProtoTicketState {
        slot: Mutex::new(None),
        done: Condvar::new(),
    });
    {
        let mut pq = shared.proto.lock().expect("proto queue poisoned");
        if pq.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        pq.queue.push_back(ProtoTask {
            job,
            kind,
            ticket: Arc::clone(&ticket),
            submitted: Instant::now(),
        });
    }
    {
        let mut st = shared.state.lock().expect("service state poisoned");
        st.proto_lanes[kind as usize].submitted += 1;
    }
    shared.proto_work.notify_one();
    Ok(ProtocolTicket { state: ticket })
}

/// One graph executor: claims queued protocol ops, runs their host ops
/// inline, and routes every multiply node through the shared batch
/// former. Exits once the queue is drained *and* shutdown was signaled
/// — every ticket issued before shutdown resolves.
pub(crate) fn proto_worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut pq = shared.proto.lock().expect("proto queue poisoned");
            loop {
                if let Some(task) = pq.queue.pop_front() {
                    break task;
                }
                if pq.shutdown {
                    return;
                }
                pq = shared.proto_work.wait(pq).expect("proto queue poisoned");
            }
        };
        run_protocol(shared, task);
    }
}

fn run_protocol(shared: &Arc<Shared>, task: ProtoTask) {
    let picked_up = Instant::now();
    let queue_us = picked_up.duration_since(task.submitted).as_secs_f64() * 1e6;
    let result = execute_job(shared, task.job);
    let service_us = task.submitted.elapsed().as_secs_f64() * 1e6;
    {
        let mut st = shared.state.lock().expect("service state poisoned");
        let lane = &mut st.proto_lanes[task.kind as usize];
        match &result {
            Ok(_) => {
                lane.completed += 1;
                lane.hist.record_us(service_us as u64);
            }
            Err(_) => lane.failed += 1,
        }
    }
    let result = result.map(|(output, nodes, attempts)| ProtocolCompleted {
        output,
        nodes,
        attempts,
        queue_us,
        service_us,
    });
    let mut slot = task.ticket.slot.lock().expect("ticket poisoned");
    *slot = Some(result);
    task.ticket.done.notify_all();
}

/// Wraps a leaf failure with its node attribution.
fn node_err(node: usize, q: u64, error: ServiceError) -> ServiceError {
    ServiceError::ProtocolNode {
        node,
        q,
        error: Box::new(error),
    }
}

fn execute_job(
    shared: &Arc<Shared>,
    job: ProtocolJob,
) -> Result<(ProtocolOutput, u32, u32), ServiceError> {
    match job {
        ProtocolJob::Mul { a, b } => {
            let q = a.modulus();
            let done = scheduler::submit_shared(shared, a, b)
                .and_then(crate::JobTicket::wait)
                .map_err(|e| node_err(0, q, e))?;
            Ok((ProtocolOutput::Product(done.product), 1, done.attempts))
        }
        ProtocolJob::WideMul { a, b, basis } => {
            let widen = |e: ServiceError| match e {
                ServiceError::WideLane { lane, q, error } => ServiceError::ProtocolNode {
                    node: lane,
                    q,
                    error,
                },
                other => other,
            };
            let nodes = basis.channels() as u32;
            let done = scheduler::submit_wide_shared(shared, &a, &b, &basis)
                .and_then(crate::WideTicket::wait)
                .map_err(widen)?;
            let attempts = done.lanes.iter().map(|l| l.attempts).max().unwrap_or(1);
            Ok((ProtocolOutput::WideProduct(done.product), nodes, attempts))
        }
        ProtocolJob::KeyGen { params, seed } => {
            let svc = SvcMult::new(shared, params.q);
            let out = KeyPair::generate(&params, &svc, seed);
            svc.settle(out)
                .map(|(kp, n, a)| (ProtocolOutput::KeyPair(Box::new(kp)), n, a))
        }
        ProtocolJob::PkeEncrypt { pk, bits, seed } => {
            let svc = SvcMult::new(shared, pk.params().q);
            let out = pk.encrypt_bits(&bits, &svc, seed);
            svc.settle(out)
                .map(|(ct, n, a)| (ProtocolOutput::Ciphertext(ct), n, a))
        }
        ProtocolJob::PkeDecrypt { sk, ct } => {
            let svc = SvcMult::new(shared, sk.params().q);
            let out = sk.decrypt_bits(&ct, &svc);
            svc.settle(out)
                .map(|(bits, n, a)| (ProtocolOutput::Bits(bits), n, a))
        }
        ProtocolJob::Encaps { pk, entropy } => {
            let svc = SvcMult::new(shared, pk.params().q);
            let out = kem::encapsulate(&pk, &svc, entropy);
            svc.settle(out)
                .map(|(enc, n, a)| (ProtocolOutput::Encapsulated(enc), n, a))
        }
        ProtocolJob::Decaps { keys, ct } => {
            let svc = SvcMult::new(shared, keys.public().params().q);
            let out = keys.decapsulate(&ct, &svc);
            svc.settle(out)
                .map(|(ss, n, a)| (ProtocolOutput::SharedSecret(ss), n, a))
        }
        ProtocolJob::SheMul { ct, plain } => {
            let svc = SvcMult::new(shared, ct.inner().u.modulus());
            let out = ct.mul_plaintext(&plain, &svc);
            svc.settle(out)
                .map(|(hc, n, a)| (ProtocolOutput::SheCiphertext(hc), n, a))
        }
        ProtocolJob::Sign { key, message, seed } => {
            let svc = SvcMult::new(shared, key.params().q);
            let out = key.sign(&message, &svc, seed);
            svc.settle(out).map(|((signature, sign_attempts), n, a)| {
                (
                    ProtocolOutput::Signature {
                        signature,
                        sign_attempts,
                    },
                    n,
                    a,
                )
            })
        }
        ProtocolJob::Verify {
            key,
            message,
            signature,
        } => {
            let svc = SvcMult::new(shared, key.params().q);
            let out = key.verify(&message, &signature, &svc);
            svc.settle(out)
                .map(|(ok, n, a)| (ProtocolOutput::Verdict(ok), n, a))
        }
    }
}

/// The service-backed multiplier: every [`PolyMultiplier::multiply`] a
/// protocol op performs becomes one leaf node through the shared batch
/// former, and [`PolyMultiplier::multiply_pair`] admits both products
/// under one lock so they pack into the same batch. Failures are
/// stashed with their node index; the placeholder `modmath` error
/// returned to the rlwe code merely aborts the op and never escapes —
/// [`SvcMult::settle`] converts the stash into
/// [`ServiceError::ProtocolNode`].
struct SvcMult<'a> {
    shared: &'a Arc<Shared>,
    q: u64,
    /// Leaf nodes submitted so far (the node index space).
    nodes: Cell<u32>,
    /// Worst per-node execution attempts seen.
    attempts: Cell<u32>,
    /// First leaf failure: (node index, underlying error).
    failure: RefCell<Option<(usize, ServiceError)>>,
    /// The ring degree, discovered lazily from the first operand (the
    /// rlwe layer guarantees every multiply of one op shares the ring).
    degree: Cell<usize>,
}

impl<'a> SvcMult<'a> {
    fn new(shared: &'a Arc<Shared>, q: u64) -> SvcMult<'a> {
        SvcMult {
            shared,
            q,
            nodes: Cell::new(0),
            attempts: Cell::new(1),
            failure: RefCell::new(None),
            degree: Cell::new(0),
        }
    }

    fn stash(&self, node: usize, error: ServiceError) -> modmath::Error {
        let mut failure = self.failure.borrow_mut();
        if failure.is_none() {
            *failure = Some((node, error));
        }
        // Placeholder abort signal for the rlwe layer; settle() always
        // reports the stashed failure instead.
        modmath::Error::InvalidDegree { n: 0 }
    }

    fn absorb(&self, done: &crate::CompletedJob) {
        self.attempts.set(self.attempts.get().max(done.attempts));
    }

    /// Converts the finished rlwe result into the graph result: on
    /// success the output plus node/attempt accounting, on failure the
    /// stashed per-node attribution (or a host-op error when no leaf
    /// failed).
    fn settle<T>(self, out: Result<T, rlwe::RlweError>) -> Result<(T, u32, u32), ServiceError> {
        let nodes = self.nodes.get();
        let attempts = self.attempts.get();
        match out {
            Ok(v) => Ok((v, nodes, attempts)),
            Err(e) => match self.failure.into_inner() {
                Some((node, error)) => Err(node_err(node, self.q, error)),
                None => Err(ServiceError::ProtocolHost {
                    detail: e.to_string(),
                }),
            },
        }
    }
}

impl PolyMultiplier for SvcMult<'_> {
    fn degree(&self) -> usize {
        self.degree.get()
    }

    fn modulus(&self) -> u64 {
        self.q
    }

    fn multiply(&self, a: &Polynomial, b: &Polynomial) -> ntt::Result<Polynomial> {
        self.degree.set(a.degree_bound());
        let node = self.nodes.get() as usize;
        self.nodes.set(self.nodes.get() + 1);
        match scheduler::submit_shared(self.shared, a.clone(), b.clone())
            .and_then(crate::JobTicket::wait)
        {
            Ok(done) => {
                self.absorb(&done);
                Ok(done.product)
            }
            Err(e) => Err(self.stash(node, e)),
        }
    }

    fn multiply_pair(
        &self,
        a0: &Polynomial,
        b0: &Polynomial,
        a1: &Polynomial,
        b1: &Polynomial,
    ) -> ntt::Result<(Polynomial, Polynomial)> {
        self.degree.set(a0.degree_bound());
        let node = self.nodes.get() as usize;
        self.nodes.set(self.nodes.get() + 2);
        let (t0, t1) = match scheduler::submit_pair_shared(
            self.shared,
            a0.clone(),
            b0.clone(),
            a1.clone(),
            b1.clone(),
        ) {
            Ok(pair) => pair,
            Err(e) => return Err(self.stash(node, e)),
        };
        // Drain both tickets even when the first fails, so no result is
        // stranded in a slot.
        let r0 = t0.wait();
        let r1 = t1.wait();
        match (r0, r1) {
            (Ok(d0), Ok(d1)) => {
                self.absorb(&d0);
                self.absorb(&d1);
                Ok((d0.product, d1.product))
            }
            (Err(e), _) => Err(self.stash(node, e)),
            (_, Err(e)) => Err(self.stash(node + 1, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backpressure, ServiceConfig};

    fn service(workers: usize) -> Service {
        Service::start(ServiceConfig {
            workers,
            backpressure: Backpressure::Block,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_u8(kind as u8), Some(kind));
            assert_eq!(ProtocolKind::from_index(kind as usize), Some(kind));
            assert!(!kind.as_str().is_empty());
        }
        assert_eq!(ProtocolKind::from_u8(ProtocolKind::COUNT as u8), None);
        // Names are distinct (they key the stats JSON).
        let mut names: Vec<&str> = ProtocolKind::ALL.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProtocolKind::COUNT);
    }

    #[test]
    fn scripted_jobs_are_deterministic_and_serve_bit_identically() {
        let svc = service(2);
        for kind in [
            ProtocolKind::Mul,
            ProtocolKind::KeyGen,
            ProtocolKind::Encaps,
        ] {
            let job = ProtocolJob::scripted(kind, 256, 42).expect("scripted");
            let again = ProtocolJob::scripted(kind, 256, 42).expect("scripted");
            let direct = job.run_direct().expect("direct");
            assert_eq!(direct, again.run_direct().expect("direct"), "{kind}");
            assert_eq!(direct.digest(), again.run_direct().unwrap().digest());
            let served = svc
                .submit_protocol(job)
                .expect("admitted")
                .wait()
                .expect("served");
            assert_eq!(served.output, direct, "{kind}");
            assert!(served.nodes >= 1);
            assert_eq!(served.attempts, 1);
        }
        let stats = svc.shutdown();
        let lane = |k: ProtocolKind| &stats.protocol[k as usize];
        assert_eq!(lane(ProtocolKind::Mul).completed, 1);
        assert_eq!(lane(ProtocolKind::KeyGen).completed, 1);
        assert_eq!(lane(ProtocolKind::Encaps).completed, 1);
        assert_eq!(lane(ProtocolKind::Decaps).submitted, 0);
    }

    #[test]
    fn unsupported_rings_are_refused_synchronously() {
        let svc = service(1);
        // Composite modulus: no negacyclic NTT exists, so no
        // accelerator configuration.
        let p = Polynomial::zero(8, 91).unwrap();
        let err = svc
            .submit_protocol(ProtocolJob::Mul { a: p.clone(), b: p })
            .expect_err("unsupported");
        assert!(matches!(err, ServiceError::UnsupportedJob { n: 8, .. }));
        // KEM below the message capacity is a host-precondition error,
        // not a panic in the executor.
        let err = ProtocolJob::scripted(ProtocolKind::Encaps, 64, 1).expect_err("too small");
        assert!(matches!(err, ServiceError::ProtocolHost { .. }));
        drop(svc);
    }

    #[test]
    fn wide_mul_graph_matches_sequential_loop() {
        let job = ProtocolJob::scripted(ProtocolKind::WideMul, 256, 7).expect("scripted");
        let direct = job.run_direct().expect("direct");
        let svc = service(2);
        let served = svc
            .submit_protocol(job)
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(served.output, direct);
        assert_eq!(served.nodes, 2);
        let stats = svc.shutdown();
        assert_eq!(stats.protocol[ProtocolKind::WideMul as usize].completed, 1);
        assert_eq!(stats.wide_completed, 1, "wide graphs ride the wide lane");
    }

    #[test]
    fn shutdown_resolves_queued_protocol_ops() {
        let svc = service(1);
        let tickets: Vec<ProtocolTicket> = (0..4)
            .map(|i| {
                let job = ProtocolJob::scripted(ProtocolKind::KeyGen, 256, 100 + i).unwrap();
                svc.submit_protocol(job).expect("admitted")
            })
            .collect();
        let stats = svc.shutdown();
        for t in tickets {
            t.wait().expect("resolved at shutdown");
        }
        assert_eq!(stats.protocol[ProtocolKind::KeyGen as usize].completed, 4);
    }
}

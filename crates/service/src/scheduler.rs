//! The scheduler core: bounded admission → batch former → superbank
//! fleet.
//!
//! ```text
//!  submit(a, b) ──► admission queue ──► batch forming ──► formed-batch
//!   (bounded,        (jobs grouped       (flush on full,    queue
//!    Block/Reject)    by (n, q))          idle worker,        │
//!                                         or linger)          ▼
//!  JobTicket::wait ◄── ticket fulfillment ◄── S superbank workers
//!                                              (multiply_batch each)
//! ```
//!
//! Batch forming is mostly *synchronous*: full groups and — whenever a
//! worker is idle — partial groups flush inline on the submitting
//! thread, and a worker going idle self-serves the oldest pending
//! partial. The dedicated former thread handles only the one decision
//! that needs a clock, sealing saturated-fleet partials at their linger
//! deadline. The saturated steady state therefore runs with no condvar
//! wakeups beyond per-job ticket fulfillment.
//!
//! Everything is plain `std` — one mutex-guarded state struct plus
//! three condvars (`admit` for backpressure waiters, `former` for the
//! batch-forming thread, `work` for the fleet), matching the no-deps
//! style of `pim::pool`.
//!
//! **Correctness contract.** Batching is a pure throughput mechanism:
//! every product is computed by the verified engine path
//! ([`cryptopim::batch::multiply_batch_products`] → `Engine`), each job
//! independently of its batch-mates, so products are bit-identical to a
//! direct [`CryptoPim::multiply`] of the same pair for any fleet size,
//! linger setting, or arrival order. `tests/service.rs` pins this with
//! a randomized mixed-degree proptest and a fleet-size determinism
//! sweep.

use crate::error::ServiceError;
use crate::stats::{LatencyHistogram, ServiceStats};
use cryptopim::accelerator::CryptoPim;
use cryptopim::arch::ArchConfig;
use cryptopim::batch::multiply_batch_products;
use modmath::params::ParamSet;
use ntt::poly::Polynomial;
use pim::par::Threads;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What `submit` does when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitting thread until space frees (no job is ever
    /// dropped; overload turns into submitter latency).
    Block,
    /// Fail fast with [`ServiceError::Overloaded`] (the caller owns the
    /// retry policy; overload turns into rejections, never into
    /// unbounded memory).
    Reject,
}

/// Tunables of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Virtual superbank workers draining formed batches. Each worker
    /// runs its engine single-threaded (the fleet itself is the
    /// parallelism), so this is also the host-thread budget.
    pub workers: usize,
    /// Admission-queue bound: jobs admitted but not yet dispatched
    /// (pending in the former plus formed-but-unclaimed).
    pub queue_capacity: usize,
    /// Policy when the queue is full.
    pub backpressure: Backpressure,
    /// How long a partial batch may wait for batch-mates before it is
    /// flushed anyway. Batch forming is work-conserving: while the
    /// fleet has an idle worker and nothing queued, partial batches
    /// flush immediately regardless of this setting — linger only
    /// delays jobs once every worker is busy, which is exactly when
    /// waiting buys packed-lane occupancy (§III-D) for free. Larger
    /// values trade saturated-load latency for occupancy.
    pub linger: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 4096,
            backpressure: Backpressure::Block,
            linger: Duration::from_micros(500),
        }
    }
}

/// Batch-formation key: jobs are only packed with same-parameter jobs.
type ParamKey = (usize, u64);

/// A fulfilled job, returned by [`JobTicket::wait`].
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// The product, bit-identical to a direct engine multiply.
    pub product: Polynomial,
    /// Time from submission to dispatch on a worker (queueing plus
    /// batch-forming linger), µs.
    pub queue_us: f64,
    /// Wall-clock execution time of the batch this job rode in, µs.
    pub service_us: f64,
    /// Jobs packed into that batch (realized occupancy).
    pub batch_jobs: usize,
    /// Packed-lane capacity of the hardware at this degree (`32k/n`).
    pub packed_lanes: usize,
}

struct TicketState {
    slot: Mutex<Option<Result<CompletedJob, ServiceError>>>,
    done: Condvar,
}

/// Handle to one submitted job. Obtain the result with [`wait`].
///
/// [`wait`]: JobTicket::wait
pub struct JobTicket {
    state: Arc<TicketState>,
}

impl JobTicket {
    /// Blocks until the job completes, returning the product and its
    /// latency breakdown (or the execution failure).
    pub fn wait(self) -> Result<CompletedJob, ServiceError> {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot).expect("ticket poisoned");
        }
    }

    /// Whether the job has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().expect("ticket poisoned").is_some()
    }
}

struct Job {
    a: Polynomial,
    b: Polynomial,
    ticket: Arc<TicketState>,
    submitted: Instant,
}

struct Group {
    jobs: Vec<Job>,
    oldest: Instant,
}

struct FormedBatch {
    key: ParamKey,
    jobs: Vec<Job>,
}

/// Why a group left the pending map for the formed queue.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    /// Reached the packed-lane capacity.
    Full,
    /// Oldest job hit the linger deadline with the fleet saturated.
    Linger,
    /// A worker was idle with nothing queued — waiting would have
    /// wasted hardware, so the partial batch shipped immediately.
    Eager,
}

struct State {
    pending: HashMap<ParamKey, Group>,
    pending_jobs: usize,
    formed: VecDeque<FormedBatch>,
    formed_jobs: usize,
    in_flight: usize,
    /// Workers currently executing a batch (for the work-conserving
    /// flush decision: idle capacity = workers − busy − formed).
    busy_workers: usize,
    shutdown: bool,
    /// Set by the batch former once every pending group has been
    /// flushed during shutdown; workers exit only after this, so no
    /// admitted job is ever stranded.
    drained: bool,
    admitted: u64,
    rejected: u64,
    completed: u64,
    batches: u64,
    full_batches: u64,
    lingered_batches: u64,
    eager_batches: u64,
    occupancy_jobs: u64,
    hist: LatencyHistogram,
}

struct Shared {
    state: Mutex<State>,
    /// Fleet size (for the idle-capacity computation).
    workers: usize,
    /// Space freed in the admission queue (Block-mode submitters wait).
    admit: Condvar,
    /// Deadline scheduling for the former (first pending group under a
    /// saturated fleet, or shutdown).
    former: Condvar,
    /// Formed batches for the fleet (workers wait).
    work: Condvar,
}

impl Shared {
    fn flush_locked(&self, st: &mut State, key: ParamKey, cause: FlushCause) {
        let Some(group) = st.pending.remove(&key) else {
            return;
        };
        let count = group.jobs.len();
        st.pending_jobs -= count;
        st.formed_jobs += count;
        st.batches += 1;
        st.occupancy_jobs += count as u64;
        match cause {
            FlushCause::Full => st.full_batches += 1,
            FlushCause::Linger => st.lingered_batches += 1,
            FlushCause::Eager => st.eager_batches += 1,
        }
        st.formed.push_back(FormedBatch {
            key,
            jobs: group.jobs,
        });
    }

    /// Workers the fleet could put to work right now beyond what the
    /// formed queue will already occupy.
    fn idle_capacity(&self, st: &State) -> usize {
        self.workers
            .saturating_sub(st.busy_workers + st.formed.len())
    }
}

/// A long-running, multi-tenant serving front end for the accelerator.
///
/// See the [module docs](self) for the pipeline shape. Construct with
/// [`Service::start`], submit with [`Service::submit`], observe with
/// [`Service::stats`], stop with [`Service::shutdown`] (or drop — the
/// destructor drains too).
pub struct Service {
    shared: Arc<Shared>,
    config: ServiceConfig,
    former: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the batch former and the worker fleet.
    pub fn start(config: ServiceConfig) -> Service {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: HashMap::new(),
                pending_jobs: 0,
                formed: VecDeque::new(),
                formed_jobs: 0,
                in_flight: 0,
                busy_workers: 0,
                shutdown: false,
                drained: false,
                admitted: 0,
                rejected: 0,
                completed: 0,
                batches: 0,
                full_batches: 0,
                lingered_batches: 0,
                eager_batches: 0,
                occupancy_jobs: 0,
                hist: LatencyHistogram::default(),
            }),
            workers: config.workers,
            admit: Condvar::new(),
            former: Condvar::new(),
            work: Condvar::new(),
        });
        let former = {
            let shared = Arc::clone(&shared);
            let linger = config.linger;
            std::thread::Builder::new()
                .name("cryptopim-svc-former".into())
                .spawn(move || former_loop(&shared, linger))
                .expect("spawn batch former")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cryptopim-svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn superbank worker")
            })
            .collect();
        Service {
            shared,
            config,
            former: Some(former),
            workers,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Submits one multiplication job; the returned ticket resolves to
    /// the product once a superbank worker has executed the batch the
    /// job was packed into.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::PairMismatch`] — operand degrees differ.
    /// * [`ServiceError::UnsupportedJob`] — no paper parameter set for
    ///   the pair's `(n, q)`.
    /// * [`ServiceError::Overloaded`] — queue full under
    ///   [`Backpressure::Reject`].
    /// * [`ServiceError::ShuttingDown`] — submitted during drain.
    pub fn submit(&self, a: Polynomial, b: Polynomial) -> Result<JobTicket, ServiceError> {
        let n = a.degree_bound();
        if b.degree_bound() != n {
            return Err(ServiceError::PairMismatch {
                left: n,
                right: b.degree_bound(),
            });
        }
        let params = ParamSet::for_degree(n)
            .map_err(|_| ServiceError::UnsupportedJob { n, q: a.modulus() })?;
        for q in [a.modulus(), b.modulus()] {
            if q != params.q {
                return Err(ServiceError::UnsupportedJob { n, q });
            }
        }
        let lanes = ArchConfig::packed_lanes(n).expect("validated degree");
        let key: ParamKey = (n, params.q);

        let ticket = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let mut st = self.shared.state.lock().expect("service state poisoned");
        loop {
            if st.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if st.pending_jobs + st.formed_jobs < self.config.queue_capacity {
                break;
            }
            match self.config.backpressure {
                Backpressure::Reject => {
                    st.rejected += 1;
                    return Err(ServiceError::Overloaded {
                        capacity: self.config.queue_capacity,
                    });
                }
                Backpressure::Block => {
                    st = self.shared.admit.wait(st).expect("service state poisoned");
                }
            }
        }
        let now = Instant::now();
        st.admitted += 1;
        st.pending_jobs += 1;
        let pending_was_empty = st.pending.is_empty();
        let group = st.pending.entry(key).or_insert_with(|| Group {
            jobs: Vec::with_capacity(lanes),
            oldest: now,
        });
        if group.jobs.is_empty() {
            group.oldest = now;
        }
        group.jobs.push(Job {
            a,
            b,
            ticket: Arc::clone(&ticket),
            submitted: now,
        });
        if group.jobs.len() >= lanes {
            // Full-occupancy batch: flush immediately, no linger paid.
            self.shared.flush_locked(&mut st, key, FlushCause::Full);
            self.shared.work.notify_one();
        } else if self.shared.idle_capacity(&st) > 0 {
            // Work-conserving fast path: an idle worker means waiting
            // cannot buy occupancy, so the partial ships straight from
            // the submitting thread — no batch-former hop.
            self.shared.flush_locked(&mut st, key, FlushCause::Eager);
            self.shared.work.notify_one();
        } else if pending_was_empty {
            // Fleet saturated and this is the first pending group: the
            // former must schedule its linger deadline. Any later job
            // or group has a strictly later deadline, so the former's
            // existing timed sleep already covers those — the saturated
            // steady state submits without a single wakeup.
            self.shared.former.notify_one();
        }
        drop(st);
        Ok(JobTicket { state: ticket })
    }

    /// A point-in-time snapshot of queue depth, counters, occupancy,
    /// and latency percentiles.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.state.lock().expect("service state poisoned");
        snapshot(&st)
    }

    /// Graceful shutdown: stops admitting, flushes every pending
    /// partial batch, waits for the fleet to drain all in-flight jobs,
    /// and returns the final statistics. Every ticket issued before the
    /// call resolves.
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain_and_join();
        let st = self.shared.state.lock().expect("service state poisoned");
        snapshot(&st)
    }

    fn drain_and_join(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.shutdown = true;
        }
        self.shared.former.notify_all();
        self.shared.work.notify_all();
        self.shared.admit.notify_all();
        if let Some(handle) = self.former.take() {
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("batch former panicked");
            }
        }
        for handle in self.workers.drain(..) {
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("superbank worker panicked");
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

fn snapshot(st: &State) -> ServiceStats {
    ServiceStats {
        queue_depth: st.pending_jobs + st.formed_jobs,
        in_flight: st.in_flight,
        admitted: st.admitted,
        rejected: st.rejected,
        completed: st.completed,
        batches: st.batches,
        full_batches: st.full_batches,
        lingered_batches: st.lingered_batches,
        eager_batches: st.eager_batches,
        mean_occupancy: if st.batches == 0 {
            0.0
        } else {
            st.occupancy_jobs as f64 / st.batches as f64
        },
        p50_us: st.hist.quantile_us(0.50),
        p95_us: st.hist.quantile_us(0.95),
        p99_us: st.hist.quantile_us(0.99),
    }
}

/// The batch-forming thread, reduced to the one decision that needs a
/// clock: sealing groups at their linger deadline. The work-conserving
/// eager flushes happen synchronously elsewhere — in `submit` when a
/// worker is idle at arrival, and in the worker loop when a worker goes
/// idle with partials pending — so the saturated steady state runs
/// without a former hop per batch. On shutdown it flushes everything
/// and marks the state drained so workers can exit.
fn former_loop(shared: &Shared, linger: Duration) {
    let mut st = shared.state.lock().expect("service state poisoned");
    loop {
        if st.shutdown {
            let keys: Vec<ParamKey> = st.pending.keys().copied().collect();
            for key in keys {
                shared.flush_locked(&mut st, key, FlushCause::Linger);
            }
            st.drained = true;
            shared.work.notify_all();
            return;
        }
        let now = Instant::now();
        let expired: Vec<ParamKey> = st
            .pending
            .iter()
            .filter(|(_, g)| now.duration_since(g.oldest) >= linger)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            // A sealed group queues behind in-flight batches even when
            // every worker is busy: the deadline closes the batch to
            // further packing, it does not wait for idle capacity.
            shared.flush_locked(&mut st, key, FlushCause::Linger);
            shared.work.notify_one();
        }
        let next_deadline = st.pending.values().map(|g| g.oldest + linger).min();
        st = match next_deadline {
            None => shared.former.wait(st).expect("service state poisoned"),
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                shared
                    .former
                    .wait_timeout(st, timeout)
                    .expect("service state poisoned")
                    .0
            }
        };
    }
}

/// One virtual superbank: claims formed batches and runs them through
/// the verified `multiply_batch_products` engine path, single-threaded
/// (the fleet is the parallelism), then fulfills every ticket.
fn worker_loop(shared: &Shared) {
    let mut accelerators: HashMap<ParamKey, CryptoPim> = HashMap::new();
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                if let Some(batch) = st.formed.pop_front() {
                    st.formed_jobs -= batch.jobs.len();
                    st.in_flight += batch.jobs.len();
                    st.busy_workers += 1;
                    // Dispatch freed admission-queue space.
                    shared.admit.notify_all();
                    break batch;
                }
                if !st.pending.is_empty() {
                    // Self-serve: this worker is idle, so by the
                    // work-conserving rule the oldest pending partial
                    // ships now — flushed here and popped on the next
                    // turn of this loop, with no former hop and no
                    // condvar wake.
                    let key = *st
                        .pending
                        .iter()
                        .min_by_key(|(_, g)| g.oldest)
                        .map(|(k, _)| k)
                        .expect("pending non-empty");
                    shared.flush_locked(&mut st, key, FlushCause::Eager);
                    continue;
                }
                if st.shutdown && st.drained {
                    return;
                }
                st = shared.work.wait(st).expect("service state poisoned");
            }
        };
        run_batch(shared, &mut accelerators, batch);
    }
}

fn run_batch(shared: &Shared, accelerators: &mut HashMap<ParamKey, CryptoPim>, batch: FormedBatch) {
    let dispatch = Instant::now();
    let count = batch.jobs.len();
    let mut pairs = Vec::with_capacity(count);
    let mut metas = Vec::with_capacity(count);
    for job in batch.jobs {
        pairs.push((job.a, job.b));
        metas.push((job.ticket, job.submitted));
    }

    let acc = match accelerators.entry(batch.key) {
        std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
        std::collections::hash_map::Entry::Vacant(e) => ParamSet::for_degree(batch.key.0)
            .map_err(pim::PimError::from)
            .and_then(|p| CryptoPim::new(&p))
            // Workers run their engine sequentially: the fleet supplies
            // the host parallelism, and nested fan-out would let worker
            // counts contend for the same cores.
            .map(|acc| e.insert(acc.with_threads(Threads::Fixed(1)))),
    };
    // Products only: batch wall-clock is measured right here, so the
    // analytic burst simulation of `multiply_batch` (a fixed tens-of-µs
    // cost per batch, painful at low occupancy) is skipped.
    let outcome = acc.and_then(|acc| multiply_batch_products(acc, &pairs));
    let done = Instant::now();
    let service_us = done.duration_since(dispatch).as_secs_f64() * 1e6;

    match outcome {
        Ok(products) => {
            let lanes = ArchConfig::packed_lanes(batch.key.0).expect("validated at submit");
            for (product, (ticket, submitted)) in products.into_iter().zip(&metas) {
                fulfill(
                    ticket,
                    Ok(CompletedJob {
                        product,
                        queue_us: dispatch.duration_since(*submitted).as_secs_f64() * 1e6,
                        service_us,
                        batch_jobs: count,
                        packed_lanes: lanes,
                    }),
                );
            }
        }
        Err(e) => {
            for (ticket, _) in &metas {
                fulfill(ticket, Err(ServiceError::Pim(e.clone())));
            }
        }
    }

    let mut st = shared.state.lock().expect("service state poisoned");
    st.in_flight -= count;
    st.busy_workers -= 1;
    st.completed += count as u64;
    for (_, submitted) in &metas {
        st.hist
            .record_us(done.duration_since(*submitted).as_micros() as u64);
    }
}

fn fulfill(ticket: &Arc<TicketState>, result: Result<CompletedJob, ServiceError>) {
    let mut slot = ticket.slot.lock().expect("ticket poisoned");
    *slot = Some(result);
    ticket.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(n: usize, q: u64, seed: u64) -> Polynomial {
        Polynomial::from_coeffs(
            (0..n as u64).map(|i| (i * 31 + seed * 7 + 1) % q).collect(),
            q,
        )
        .unwrap()
    }

    #[test]
    fn single_job_round_trip() {
        let svc = Service::start(ServiceConfig::default());
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        use ntt::negacyclic::PolyMultiplier;
        let (a, b) = (poly(256, p.q, 1), poly(256, p.q, 2));
        let direct = acc.multiply(&a, &b).unwrap();
        let done = svc
            .submit(a, b)
            .expect("admitted")
            .wait()
            .expect("executed");
        assert_eq!(done.product, direct);
        assert_eq!(done.packed_lanes, 64);
        assert!(done.batch_jobs >= 1);
        assert!(done.queue_us >= 0.0 && done.service_us > 0.0);
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn full_batch_flushes_without_linger() {
        // 64 lanes at n = 256: with the lone worker saturated (so the
        // eager path cannot drain singles) and an hour-long linger, 64
        // same-key jobs must still flush — as one full batch.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            linger: Duration::from_secs(3600),
            ..ServiceConfig::default()
        });
        let blockers = saturate_one_worker(&svc, 2);
        let q = ParamSet::for_degree(256).unwrap().q;
        let tickets: Vec<JobTicket> = (0..64)
            .map(|k| {
                svc.submit(poly(256, q, k), poly(256, q, k + 100))
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            let done = t.wait().expect("executed");
            assert_eq!(done.batch_jobs, 64, "full-occupancy batch");
        }
        for b in blockers {
            b.wait().expect("executed");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.batches, 3, "two blocker batches plus one full batch");
        assert_eq!(
            stats.full_batches, 3,
            "32k blockers are full single-lane batches"
        );
        assert_eq!(stats.eager_batches, 0);
        assert_eq!(stats.lingered_batches, 0);
    }

    #[test]
    fn idle_fleet_flushes_partials_eagerly() {
        // A lone job with an hour-long linger and an idle fleet must
        // not wait: the work-conserving former ships it immediately.
        let svc = Service::start(ServiceConfig {
            linger: Duration::from_secs(3600),
            ..ServiceConfig::default()
        });
        let q = ParamSet::for_degree(512).unwrap().q;
        let t = svc
            .submit(poly(512, q, 3), poly(512, q, 4))
            .expect("admitted");
        let done = t.wait().expect("executed");
        assert_eq!(done.batch_jobs, 1, "lone job shipped eagerly");
        let stats = svc.shutdown();
        assert_eq!(stats.eager_batches, 1);
        assert_eq!(stats.lingered_batches, 0);
    }

    /// Occupies the single worker of `svc` for long enough to submit
    /// more work underneath it. Degree-32k jobs have exactly one
    /// packed lane, so each submit forms a *full* batch inline (no
    /// former involvement) and a debug-mode 32k multiply runs long;
    /// `count` of them keep the lone worker saturated back to back
    /// (the formed queue covers the gap between batches in the
    /// idle-capacity computation).
    fn saturate_one_worker(svc: &Service, count: usize) -> Vec<JobTicket> {
        let q = ParamSet::for_degree(32768).unwrap().q;
        let tickets: Vec<JobTicket> = (0..count as u64)
            .map(|k| {
                svc.submit(poly(32768, q, k), poly(32768, q, k + 9))
                    .expect("admitted")
            })
            .collect();
        // Wait until the first batch is actually on the worker. The
        // second condition is a hang-safe escape: if the blockers
        // somehow drained first, the caller's premise assertions fail
        // loudly instead of this loop spinning forever.
        while svc.stats().in_flight == 0 && tickets.iter().any(|t| !t.is_done()) {
            std::thread::yield_now();
        }
        tickets
    }

    #[test]
    fn linger_holds_partials_while_fleet_saturated() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            linger: Duration::from_nanos(1),
            ..ServiceConfig::default()
        });
        let blockers = saturate_one_worker(&svc, 2);
        // With the worker busy, this partial cannot flush eagerly; the
        // already-expired linger deadline flushes it on the former's
        // next wakeup instead.
        let q = ParamSet::for_degree(1024).unwrap().q;
        let t = svc
            .submit(poly(1024, q, 5), poly(1024, q, 6))
            .expect("admitted");
        t.wait().expect("executed");
        for b in blockers {
            b.wait().expect("executed");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.lingered_batches, 1, "{stats}");
    }

    #[test]
    fn reject_policy_returns_typed_error() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
            linger: Duration::from_secs(3600),
        });
        // Saturate the worker so the next job stays queued: eager
        // flushing needs idle capacity, and the linger is an hour.
        // One blocker only — its batch forms inline and is popped by
        // the worker, so it never counts against the queue bound.
        let blockers = saturate_one_worker(&svc, 1);
        let q = ParamSet::for_degree(1024).unwrap().q;
        let first = svc
            .submit(poly(1024, q, 1), poly(1024, q, 2))
            .expect("fits the queue");
        let second = svc.submit(poly(1024, q, 3), poly(1024, q, 4));
        assert_eq!(second.err(), Some(ServiceError::Overloaded { capacity: 1 }));
        let stats = svc.stats();
        assert_eq!(stats.rejected, 1);
        drop(first);
        drop(blockers);
        let final_stats = svc.shutdown();
        assert_eq!(final_stats.admitted, 2);
        assert_eq!(final_stats.completed, 2, "drained on shutdown");
    }

    #[test]
    fn invalid_jobs_fail_synchronously() {
        let svc = Service::start(ServiceConfig::default());
        let q = ParamSet::for_degree(256).unwrap().q;
        assert_eq!(
            svc.submit(poly(256, q, 1), poly(512, 12289, 1)).err(),
            Some(ServiceError::PairMismatch {
                left: 256,
                right: 512
            })
        );
        // Valid ring, wrong modulus for the paper's degree table.
        let wrong_q = Polynomial::from_coeffs(vec![1; 256], 12289).unwrap();
        assert_eq!(
            svc.submit(wrong_q.clone(), wrong_q).err(),
            Some(ServiceError::UnsupportedJob { n: 256, q: 12289 })
        );
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let svc = Service::start(ServiceConfig::default());
        // Reach into the shared state the way shutdown does, then try
        // to submit: drop-based shutdown makes this race-free to test
        // only via the consuming API, so use two services.
        let q = ParamSet::for_degree(256).unwrap().q;
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 0);
        let svc2 = Service::start(ServiceConfig::default());
        {
            let mut st = svc2.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        assert_eq!(
            svc2.submit(poly(256, q, 1), poly(256, q, 2)).err(),
            Some(ServiceError::ShuttingDown)
        );
    }

    #[test]
    fn mixed_keys_never_share_a_batch() {
        let svc = Service::start(ServiceConfig {
            linger: Duration::from_millis(1),
            ..ServiceConfig::default()
        });
        let q256 = ParamSet::for_degree(256).unwrap().q;
        let q512 = ParamSet::for_degree(512).unwrap().q;
        let t1 = svc
            .submit(poly(256, q256, 1), poly(256, q256, 2))
            .expect("admitted");
        let t2 = svc
            .submit(poly(512, q512, 1), poly(512, q512, 2))
            .expect("admitted");
        let d1 = t1.wait().expect("executed");
        let d2 = t2.wait().expect("executed");
        assert_eq!(d1.product.degree_bound(), 256);
        assert_eq!(d2.product.degree_bound(), 512);
        let stats = svc.shutdown();
        assert_eq!(stats.batches, 2, "parameter keys form separate batches");
    }
}

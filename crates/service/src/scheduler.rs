//! The scheduler core: bounded admission → batch former → superbank
//! fleet.
//!
//! ```text
//!  submit(a, b) ──► admission queue ──► batch forming ──► formed-batch
//!   (bounded,        (jobs grouped       (flush on full,    queue
//!    Block/Reject)    by (n, q))          idle worker,        │
//!                                         or linger)          ▼
//!  JobTicket::wait ◄── ticket fulfillment ◄── S superbank workers
//!                                              (multiply_batch each)
//! ```
//!
//! Batch forming is mostly *synchronous*: full groups and — whenever a
//! worker is idle — partial groups flush inline on the submitting
//! thread, and a worker going idle self-serves the oldest pending
//! partial. The dedicated former thread handles only the one decision
//! that needs a clock, sealing saturated-fleet partials at their linger
//! deadline. The saturated steady state therefore runs with no condvar
//! wakeups beyond per-job ticket fulfillment.
//!
//! Everything is plain `std` — one mutex-guarded state struct plus
//! three condvars (`admit` for backpressure waiters, `former` for the
//! batch-forming thread, `work` for the fleet), matching the no-deps
//! style of `pim::pool`.
//!
//! **Correctness contract.** Batching is a pure throughput mechanism:
//! every product is computed by the verified engine path
//! ([`cryptopim::batch::multiply_batch_products`] → `Engine`), each job
//! independently of its batch-mates, so products are bit-identical to a
//! direct [`CryptoPim::multiply`] of the same pair for any fleet size,
//! linger setting, or arrival order. `tests/service.rs` pins this with
//! a randomized mixed-degree proptest and a fleet-size determinism
//! sweep.

use crate::error::ServiceError;
use crate::stats::{LatencyHistogram, ProtocolLaneStats, ServiceStats};
use cryptopim::accelerator::CryptoPim;
use cryptopim::arch::ArchConfig;
use cryptopim::batch::multiply_batch_outcomes;
use cryptopim::check::CheckPolicy;
use cryptopim::hotcache::HotCache;
use cryptopim::phase;
use modmath::crt::RnsBasis;
use modmath::params::ParamSet;
use modmath::primes;
use ntt::poly::Polynomial;
use pim::fault::{Injector, WritePath};
use pim::par::Threads;
use pim::PimError;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What `submit` does when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitting thread until space frees (no job is ever
    /// dropped; overload turns into submitter latency).
    Block,
    /// Fail fast with [`ServiceError::Overloaded`] (the caller owns the
    /// retry policy; overload turns into rejections, never into
    /// unbounded memory).
    Reject,
}

/// Tunables of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Virtual superbank workers draining formed batches. Each worker
    /// runs its engine single-threaded (the fleet itself is the
    /// parallelism), so this is also the host-thread budget.
    pub workers: usize,
    /// Admission-queue bound: jobs admitted but not yet dispatched
    /// (pending in the former plus formed-but-unclaimed).
    pub queue_capacity: usize,
    /// Policy when the queue is full.
    pub backpressure: Backpressure,
    /// How long a partial batch may wait for batch-mates before it is
    /// flushed anyway. Batch forming is work-conserving: while the
    /// fleet has an idle worker and nothing queued, partial batches
    /// flush immediately regardless of this setting — linger only
    /// delays jobs once every worker is busy, which is exactly when
    /// waiting buys packed-lane occupancy (§III-D) for free. Larger
    /// values trade saturated-load latency for occupancy.
    pub linger: Duration,
    /// Result-integrity policy every worker applies to every product
    /// ([`CheckPolicy::Residue`] enables the cheap probabilistic
    /// residue screen, [`CheckPolicy::Recompute`] the sound software
    /// referee; the default [`CheckPolicy::Disabled`] is the historical
    /// unchecked hot path). With checking on, a detected-corrupt
    /// product never reaches a ticket: the job is retried up to
    /// [`ServiceConfig::max_attempts`] times and otherwise fails with
    /// [`ServiceError::FaultUnrecovered`].
    pub check: CheckPolicy,
    /// Execution attempts per job before a detected-corrupt result is
    /// surfaced as [`ServiceError::FaultUnrecovered`] (min 1). Retries
    /// requeue the job at the front of the formed queue, so transient
    /// faults recover with one extra batch trip.
    pub max_attempts: u32,
    /// Consecutive faulted batches after which a bank (worker) is
    /// quarantined — removed from the fleet for the service's lifetime
    /// (min 1). When every bank is quarantined the service degrades
    /// gracefully: queued jobs fail and new submissions return
    /// [`ServiceError::Overloaded`], never a wrong answer.
    pub quarantine_after: u32,
    /// Optional fault injector (campaigns and tests): each worker
    /// routes its block writes through
    /// [`Injector::bank_writes`]`(worker_index)`. `None` — the default
    /// and the production setting — leaves the write path untouched.
    pub injector: Option<Arc<dyn Injector>>,
    /// Capacity of the fleet-wide hot-operand transform cache
    /// ([`cryptopim::hotcache::HotCache`]): protocol-style workloads
    /// that reuse `a` operands (public/evaluation keys) skip the
    /// operand's forward NTT on both the engine and the `Recompute`
    /// referee path when it hits. `0` (the default) disables the cache.
    /// The cache is shared across workers and invalidated whenever a
    /// bank is quarantined.
    pub hot_capacity: usize,
    /// Host threads executing protocol job graphs submitted through
    /// [`Service::submit_protocol`]: each runs the cheap host ops
    /// (sampling, additions, hashing) of one protocol op at a time and
    /// routes every NTT multiply through the batch former as an
    /// ordinary leaf job (min 1). More executors mean more protocol
    /// ops in flight, and therefore more chances for different
    /// tenants' inner products to pack into the same batch.
    pub protocol_workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 4096,
            backpressure: Backpressure::Block,
            linger: Duration::from_micros(500),
            check: CheckPolicy::Disabled,
            max_attempts: 3,
            quarantine_after: 3,
            injector: None,
            hot_capacity: 0,
            protocol_workers: 2,
        }
    }
}

/// Batch-formation key: jobs are only packed with same-parameter jobs.
pub(crate) type ParamKey = (usize, u64);

/// A fulfilled job, returned by [`JobTicket::wait`].
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// The product, bit-identical to a direct engine multiply.
    pub product: Polynomial,
    /// Time from submission to dispatch on a worker (queueing plus
    /// batch-forming linger), µs.
    pub queue_us: f64,
    /// Wall-clock execution time of the batch this job rode in, µs.
    pub service_us: f64,
    /// Jobs packed into that batch (realized occupancy).
    pub batch_jobs: usize,
    /// Packed-lane capacity of the hardware at this degree (`32k/n`).
    pub packed_lanes: usize,
    /// Execution attempts this job took (1 = first try; > 1 means a
    /// detected-corrupt result was retried and the job *recovered*).
    pub attempts: u32,
}

struct TicketState {
    slot: Mutex<Option<Result<CompletedJob, ServiceError>>>,
    done: Condvar,
}

/// Handle to one submitted job. Obtain the result with [`wait`].
///
/// [`wait`]: JobTicket::wait
pub struct JobTicket {
    state: Arc<TicketState>,
}

impl JobTicket {
    /// Blocks until the job completes, returning the product and its
    /// latency breakdown (or the execution failure).
    pub fn wait(self) -> Result<CompletedJob, ServiceError> {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot).expect("ticket poisoned");
        }
    }

    /// Blocks for at most `timeout`, returning the completed job if it
    /// resolved in time or [`ServiceError::WaitTimeout`] otherwise.
    ///
    /// Unlike [`wait`](JobTicket::wait) this borrows the ticket, so a
    /// timed-out wait can be retried later — the job keeps executing
    /// and its eventual result stays claimable. This is the primitive
    /// the TCP front end builds on: a remote client's `Wait` verb can
    /// never wedge a connection-handler thread forever. A successful
    /// call *takes* the result; a second wait on the same ticket then
    /// behaves as if the job never completed (it times out).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<CompletedJob, ServiceError> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServiceError::WaitTimeout {
                    timeout_ms: timeout.as_millis() as u64,
                });
            }
            slot = self
                .state
                .done
                .wait_timeout(slot, remaining)
                .expect("ticket poisoned")
                .0;
        }
    }

    /// Whether the job has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().expect("ticket poisoned").is_some()
    }
}

/// A fulfilled wide (RNS-decomposed) job, returned by
/// [`WideTicket::wait`].
#[derive(Debug, Clone)]
pub struct WideCompletedJob {
    /// The recombined product over the composite modulus `Q = Π q_i`,
    /// bit-identical to a sequential residue-by-residue multiply.
    pub product: Vec<u128>,
    /// Per-lane completions in basis order — each lane rode the
    /// ordinary batch pipeline, so its latency split, batch occupancy,
    /// and attempt count are all observable.
    pub lanes: Vec<CompletedJob>,
    /// Host-side CRT recombination time for this job, µs.
    pub recombine_us: f64,
}

/// Handle to one wide job: `k` residue-lane tickets plus the basis that
/// recombines them. Obtain the product with [`WideTicket::wait`].
pub struct WideTicket {
    lanes: Vec<(JobTicket, u64)>,
    basis: RnsBasis,
    n: usize,
    shared: Arc<Shared>,
    submitted: Instant,
}

impl WideTicket {
    /// Blocks until every residue lane completes, then CRT-recombines
    /// the lane products on the host. The parent resolves only when all
    /// lanes have landed; a failed lane fails the wide job with
    /// [`ServiceError::WideLane`] naming the lane (sibling lanes are
    /// still drained so their results are accounted for).
    pub fn wait(self) -> Result<WideCompletedJob, ServiceError> {
        let mut lane_jobs = Vec::with_capacity(self.lanes.len());
        let mut failure: Option<ServiceError> = None;
        for (lane, (ticket, q)) in self.lanes.into_iter().enumerate() {
            match ticket.wait() {
                Ok(done) => lane_jobs.push(done),
                Err(error) => {
                    if failure.is_none() {
                        failure = Some(ServiceError::WideLane {
                            lane,
                            q,
                            error: Box::new(error),
                        });
                    }
                }
            }
        }
        if let Some(error) = failure {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.wide_failed += 1;
            return Err(error);
        }
        let t = Instant::now();
        let lane_refs: Vec<&[u64]> = lane_jobs.iter().map(|j| j.product.coeffs()).collect();
        let mut product = vec![0u128; self.n];
        self.basis.combine_into(&lane_refs, &mut product);
        let recombine = t.elapsed();
        phase::record_recombine(recombine);
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.wide_completed += 1;
            st.wide_hist
                .record_us(self.submitted.elapsed().as_micros() as u64);
        }
        Ok(WideCompletedJob {
            product,
            lanes: lane_jobs,
            recombine_us: recombine.as_secs_f64() * 1e6,
        })
    }

    /// Whether every residue lane has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.lanes.iter().all(|(t, _)| t.is_done())
    }
}

struct Job {
    a: Polynomial,
    b: Polynomial,
    ticket: Arc<TicketState>,
    submitted: Instant,
    /// Execution attempts so far, counting the upcoming one (starts
    /// at 1; bumped on each detected-fault requeue).
    attempts: u32,
}

struct Group {
    jobs: Vec<Job>,
    oldest: Instant,
}

struct FormedBatch {
    key: ParamKey,
    jobs: Vec<Job>,
}

/// Why a group left the pending map for the formed queue.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    /// Reached the packed-lane capacity.
    Full,
    /// Oldest job hit the linger deadline with the fleet saturated.
    Linger,
    /// A worker was idle with nothing queued — waiting would have
    /// wasted hardware, so the partial batch shipped immediately.
    Eager,
}

pub(crate) struct State {
    pending: HashMap<ParamKey, Group>,
    pending_jobs: usize,
    formed: VecDeque<FormedBatch>,
    formed_jobs: usize,
    in_flight: usize,
    /// Workers currently executing a batch (for the work-conserving
    /// flush decision: idle capacity = workers − busy − formed).
    busy_workers: usize,
    shutdown: bool,
    /// Set by the batch former once every pending group has been
    /// flushed during shutdown; workers exit only after this, so no
    /// admitted job is ever stranded.
    drained: bool,
    admitted: u64,
    rejected: u64,
    completed: u64,
    batches: u64,
    full_batches: u64,
    lingered_batches: u64,
    eager_batches: u64,
    occupancy_jobs: u64,
    faults_detected: u64,
    retries: u64,
    recovered: u64,
    /// Per-bank run of consecutive faulted batches (reset by any clean
    /// batch on that bank) — the quarantine trigger.
    bank_streak: Vec<u32>,
    /// Banks removed from the fleet after `quarantine_after`
    /// consecutive faulted batches.
    quarantined: Vec<bool>,
    /// Workers still serving (fleet size minus quarantined banks).
    active_workers: usize,
    /// Every bank quarantined: queued jobs failed, new submissions
    /// refused with `Overloaded`.
    degraded: bool,
    hist: LatencyHistogram,
    /// Wide (RNS-decomposed) jobs accepted by `submit_wide`.
    wide_submitted: u64,
    /// Wide jobs whose every residue lane landed and recombined.
    wide_completed: u64,
    /// Wide jobs that failed (any lane refused or failed).
    wide_failed: u64,
    /// End-to-end wide-job latency (submit → recombined product).
    wide_hist: LatencyHistogram,
    /// Per-kind protocol lane accumulators, indexed by
    /// [`crate::graph::ProtocolKind`] discriminant.
    pub(crate) proto_lanes: Vec<ProtoLane>,
}

/// Per-kind protocol counters (one per [`crate::graph::ProtocolKind`]).
#[derive(Debug, Default)]
pub(crate) struct ProtoLane {
    pub(crate) submitted: u64,
    pub(crate) completed: u64,
    pub(crate) failed: u64,
    pub(crate) hist: LatencyHistogram,
}

/// The protocol-executor queue: typed protocol ops waiting for a free
/// graph executor. Kept separate from the leaf-job admission queue so a
/// protocol op never deadlocks against its own leaf multiplies.
pub(crate) struct ProtoQueue {
    pub(crate) queue: VecDeque<crate::graph::ProtoTask>,
    pub(crate) shutdown: bool,
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<State>,
    /// The started configuration (workers/attempts/quarantine already
    /// clamped); workers read their check policy and injector here.
    pub(crate) cfg: ServiceConfig,
    /// Fleet-wide hot-operand transform cache (`None` when
    /// [`ServiceConfig::hot_capacity`] is 0).
    hot: Option<Arc<HotCache>>,
    /// Space freed in the admission queue (Block-mode submitters wait).
    admit: Condvar,
    /// Deadline scheduling for the former (first pending group under a
    /// saturated fleet, or shutdown).
    former: Condvar,
    /// Formed batches for the fleet (workers wait).
    work: Condvar,
    /// Protocol ops waiting for a graph executor.
    pub(crate) proto: Mutex<ProtoQueue>,
    /// New protocol work (graph executors wait).
    pub(crate) proto_work: Condvar,
}

impl Shared {
    fn flush_locked(&self, st: &mut State, key: ParamKey, cause: FlushCause) {
        let Some(group) = st.pending.remove(&key) else {
            return;
        };
        let count = group.jobs.len();
        st.pending_jobs -= count;
        st.formed_jobs += count;
        st.batches += 1;
        st.occupancy_jobs += count as u64;
        match cause {
            FlushCause::Full => st.full_batches += 1,
            FlushCause::Linger => st.lingered_batches += 1,
            FlushCause::Eager => st.eager_batches += 1,
        }
        st.formed.push_back(FormedBatch {
            key,
            jobs: group.jobs,
        });
    }

    /// Workers the fleet could put to work right now beyond what the
    /// formed queue will already occupy (quarantined banks excluded).
    fn idle_capacity(&self, st: &State) -> usize {
        st.active_workers
            .saturating_sub(st.busy_workers + st.formed.len())
    }
}

/// Resolves the parameter set a `(n, q)` job runs under, or `None` when
/// the pair is unsupported. Paper-table degrees take the paper's
/// modulus assignment on the specialized fast path, and additionally
/// accept any NTT-friendly prime below `2^31` — the residue lanes of
/// wide (RNS-decomposed) jobs run under discovered primes and ride the
/// engine's generic-modulus datapath. Degrees above the native 32k
/// (which segment across hardware passes, §III-D) are accepted only
/// with the paper's large-degree modulus — the only specialized modulus
/// whose `q − 1` keeps the `2n | q − 1` NTT divisibility at those
/// sizes.
pub(crate) fn params_for(n: usize, q: u64) -> Option<ParamSet> {
    if let Ok(p) = ParamSet::for_degree(n) {
        if p.q == q {
            return Some(p);
        }
        if q < 1 << 31 && primes::is_prime(q) && primes::supports_negacyclic_ntt(q, n) {
            let bitwidth = if q < 1 << 16 { 16 } else { 32 };
            return ParamSet::custom(n, q, bitwidth).ok();
        }
        return None;
    }
    if n > CryptoPim::max_native_degree() && q == SEGMENTED_Q {
        return ParamSet::custom(n, q, 32).ok();
    }
    None
}

/// Modulus serving segmented (> 32k) degrees: the paper's large-degree
/// assignment `3·2^18 + 1`.
const SEGMENTED_Q: u64 = 786_433;

/// A long-running, multi-tenant serving front end for the accelerator.
///
/// See the [module docs](self) for the pipeline shape. Construct with
/// [`Service::start`], submit with [`Service::submit`], observe with
/// [`Service::stats`], stop with [`Service::shutdown`] (or drop — the
/// destructor drains too).
pub struct Service {
    shared: Arc<Shared>,
    config: ServiceConfig,
    former: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    proto_workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the batch former and the worker fleet.
    pub fn start(config: ServiceConfig) -> Service {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_attempts: config.max_attempts.max(1),
            quarantine_after: config.quarantine_after.max(1),
            protocol_workers: config.protocol_workers.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: HashMap::new(),
                pending_jobs: 0,
                formed: VecDeque::new(),
                formed_jobs: 0,
                in_flight: 0,
                busy_workers: 0,
                shutdown: false,
                drained: false,
                admitted: 0,
                rejected: 0,
                completed: 0,
                batches: 0,
                full_batches: 0,
                lingered_batches: 0,
                eager_batches: 0,
                occupancy_jobs: 0,
                faults_detected: 0,
                retries: 0,
                recovered: 0,
                bank_streak: vec![0; config.workers],
                quarantined: vec![false; config.workers],
                active_workers: config.workers,
                degraded: false,
                hist: LatencyHistogram::default(),
                wide_submitted: 0,
                wide_completed: 0,
                wide_failed: 0,
                wide_hist: LatencyHistogram::default(),
                proto_lanes: (0..crate::graph::ProtocolKind::COUNT)
                    .map(|_| ProtoLane::default())
                    .collect(),
            }),
            cfg: config.clone(),
            hot: (config.hot_capacity > 0).then(|| Arc::new(HotCache::new(config.hot_capacity))),
            admit: Condvar::new(),
            former: Condvar::new(),
            work: Condvar::new(),
            proto: Mutex::new(ProtoQueue {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            proto_work: Condvar::new(),
        });
        let former = {
            let shared = Arc::clone(&shared);
            let linger = config.linger;
            std::thread::Builder::new()
                .name("cryptopim-svc-former".into())
                .spawn(move || former_loop(&shared, linger))
                .expect("spawn batch former")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cryptopim-svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn superbank worker")
            })
            .collect();
        let proto_workers = (0..config.protocol_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cryptopim-svc-proto-{i}"))
                    .spawn(move || crate::graph::proto_worker_loop(&shared))
                    .expect("spawn protocol executor")
            })
            .collect();
        Service {
            shared,
            config,
            former: Some(former),
            workers,
            proto_workers,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared scheduler state (for the protocol graph layer).
    pub(crate) fn shared_ref(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Submits one multiplication job; the returned ticket resolves to
    /// the product once a superbank worker has executed the batch the
    /// job was packed into.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::PairMismatch`] — operand degrees differ.
    /// * [`ServiceError::UnsupportedJob`] — no parameter set for the
    ///   pair's `(n, q)`: outside the paper table and not a segmented
    ///   (> 32k) degree under the large-degree modulus.
    /// * [`ServiceError::Overloaded`] — queue full under
    ///   [`Backpressure::Reject`], or every bank quarantined.
    /// * [`ServiceError::ShuttingDown`] — submitted during drain.
    pub fn submit(&self, a: Polynomial, b: Polynomial) -> Result<JobTicket, ServiceError> {
        submit_shared(&self.shared, a, b)
    }

    /// Submits one wide-modulus multiplication over `Q = Π q_i`: the
    /// operands split into one residue sub-job per basis channel, each
    /// flowing through the ordinary `(n, q_i)` batch former — residues
    /// of *different* tenants' wide jobs pack into the same batches —
    /// and the returned ticket CRT-recombines the lane products on the
    /// host once every lane lands. Each lane is checked, retried, and
    /// quarantine-accounted independently under the configured
    /// [`CheckPolicy`], so a corrupt lane fails or recovers alone.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::PairMismatch`] — operand lengths differ.
    /// * [`ServiceError::UnsupportedJob`] — some lane's `(n, q_i)` has
    ///   no accelerator configuration (checked for every lane before
    ///   anything is queued).
    /// * [`ServiceError::WideLane`] — a lane was refused at admission
    ///   (e.g. `Overloaded` mid-way); earlier lanes stay queued and
    ///   execute harmlessly, their tickets discarded.
    pub fn submit_wide(
        &self,
        a: &[u128],
        b: &[u128],
        basis: &RnsBasis,
    ) -> Result<WideTicket, ServiceError> {
        submit_wide_shared(&self.shared, a, b, basis)
    }

    /// A point-in-time snapshot of queue depth, counters, occupancy,
    /// and latency percentiles.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.state.lock().expect("service state poisoned");
        snapshot(&st, self.shared.hot.as_deref())
    }

    /// Graceful shutdown: stops admitting, flushes every pending
    /// partial batch, waits for the fleet to drain all in-flight jobs,
    /// and returns the final statistics. Every ticket issued before the
    /// call resolves.
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain_and_join();
        let st = self.shared.state.lock().expect("service state poisoned");
        snapshot(&st, self.shared.hot.as_deref())
    }

    fn drain_and_join(&mut self) {
        // Drain the protocol executors *first*, while the batch fleet is
        // still accepting leaf submits: every queued protocol op runs to
        // completion (its leaf multiplies still admit and execute), so a
        // ProtocolTicket issued before shutdown always resolves.
        {
            let mut pq = self.shared.proto.lock().expect("proto queue poisoned");
            pq.shutdown = true;
        }
        self.shared.proto_work.notify_all();
        for handle in self.proto_workers.drain(..) {
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("protocol executor panicked");
            }
        }
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.shutdown = true;
        }
        self.shared.former.notify_all();
        self.shared.work.notify_all();
        self.shared.admit.notify_all();
        if let Some(handle) = self.former.take() {
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("batch former panicked");
            }
        }
        for handle in self.workers.drain(..) {
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("superbank worker panicked");
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

/// Validates one leaf pair, resolving its batch-formation key and the
/// packed-lane capacity at its degree.
pub(crate) fn validate_leaf(
    a: &Polynomial,
    b: &Polynomial,
) -> Result<(ParamKey, usize), ServiceError> {
    let n = a.degree_bound();
    if b.degree_bound() != n {
        return Err(ServiceError::PairMismatch {
            left: n,
            right: b.degree_bound(),
        });
    }
    let Some(params) = params_for(n, a.modulus()) else {
        return Err(ServiceError::UnsupportedJob { n, q: a.modulus() });
    };
    if b.modulus() != params.q {
        return Err(ServiceError::UnsupportedJob { n, q: b.modulus() });
    }
    let lanes = ArchConfig::packed_lanes(n).expect("validated degree");
    Ok(((n, params.q), lanes))
}

/// Leaf-submit core shared by [`Service::submit`], the wide residue
/// lanes, and the protocol graph executors: admits `pairs` (all
/// pre-validated to the same `(n, q)` key) under a *single* state-lock
/// acquisition, so multi-job callers land every job in the same
/// formation group — a flushed batch carries them together, which is
/// how a protocol op's independent inner products ride one batch.
fn submit_group_shared(
    shared: &Shared,
    key: ParamKey,
    lanes: usize,
    pairs: Vec<(Polynomial, Polynomial)>,
) -> Result<Vec<JobTicket>, ServiceError> {
    let count = pairs.len();
    let tickets: Vec<Arc<TicketState>> = (0..count)
        .map(|_| {
            Arc::new(TicketState {
                slot: Mutex::new(None),
                done: Condvar::new(),
            })
        })
        .collect();
    let mut st = shared.state.lock().expect("service state poisoned");
    loop {
        if st.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if st.degraded {
            // Graceful degradation: with the whole fleet quarantined no
            // admitted job could ever execute, so even Block-mode
            // submitters are turned away.
            st.rejected += count as u64;
            return Err(ServiceError::Overloaded {
                capacity: shared.cfg.queue_capacity,
            });
        }
        if st.pending_jobs + st.formed_jobs + count <= shared.cfg.queue_capacity {
            break;
        }
        match shared.cfg.backpressure {
            Backpressure::Reject => {
                st.rejected += count as u64;
                return Err(ServiceError::Overloaded {
                    capacity: shared.cfg.queue_capacity,
                });
            }
            Backpressure::Block => {
                st = shared.admit.wait(st).expect("service state poisoned");
            }
        }
    }
    let now = Instant::now();
    st.admitted += count as u64;
    st.pending_jobs += count;
    let pending_was_empty = st.pending.is_empty();
    for ((a, b), ticket) in pairs.into_iter().zip(&tickets) {
        let group = st.pending.entry(key).or_insert_with(|| Group {
            jobs: Vec::with_capacity(lanes),
            oldest: now,
        });
        if group.jobs.is_empty() {
            group.oldest = now;
        }
        group.jobs.push(Job {
            a,
            b,
            ticket: Arc::clone(ticket),
            submitted: now,
            attempts: 1,
        });
        if group.jobs.len() >= lanes {
            // Full-occupancy batch: flush immediately, no linger paid.
            // (A multi-job call crossing the lane boundary splits here,
            // never overfilling a batch past the packed-lane capacity.)
            shared.flush_locked(&mut st, key, FlushCause::Full);
            shared.work.notify_one();
        }
    }
    if st.pending.contains_key(&key) {
        if shared.idle_capacity(&st) > 0 {
            // Work-conserving fast path: an idle worker means waiting
            // cannot buy occupancy, so the partial ships straight from
            // the submitting thread — no batch-former hop.
            shared.flush_locked(&mut st, key, FlushCause::Eager);
            shared.work.notify_one();
        } else if pending_was_empty {
            // Fleet saturated and this is the first pending group: the
            // former must schedule its linger deadline. Any later job
            // or group has a strictly later deadline, so the former's
            // existing timed sleep already covers those — the saturated
            // steady state submits without a single wakeup.
            shared.former.notify_one();
        }
    }
    drop(st);
    Ok(tickets
        .into_iter()
        .map(|state| JobTicket { state })
        .collect())
}

/// Free-function form of [`Service::submit`], callable from graph
/// executors that hold only the shared state.
pub(crate) fn submit_shared(
    shared: &Shared,
    a: Polynomial,
    b: Polynomial,
) -> Result<JobTicket, ServiceError> {
    let (key, lanes) = validate_leaf(&a, &b)?;
    let mut tickets = submit_group_shared(shared, key, lanes, vec![(a, b)])?;
    Ok(tickets.pop().expect("one ticket per pair"))
}

/// Submits two *independent* leaf multiplies as one admission: when the
/// pairs share a `(n, q)` key (the common case inside a protocol op)
/// both jobs join the same formation group atomically, so they pack
/// into the same hardware batch instead of racing other tenants for
/// separate ones. Falls back to two ordinary submissions when the keys
/// differ or the queue cannot hold two jobs at once.
pub(crate) fn submit_pair_shared(
    shared: &Shared,
    a0: Polynomial,
    b0: Polynomial,
    a1: Polynomial,
    b1: Polynomial,
) -> Result<(JobTicket, JobTicket), ServiceError> {
    let (k0, lanes) = validate_leaf(&a0, &b0)?;
    let (k1, _) = validate_leaf(&a1, &b1)?;
    if k0 == k1 && shared.cfg.queue_capacity >= 2 {
        let mut tickets = submit_group_shared(shared, k0, lanes, vec![(a0, b0), (a1, b1)])?;
        let t1 = tickets.pop().expect("two tickets");
        let t0 = tickets.pop().expect("two tickets");
        Ok((t0, t1))
    } else {
        let t0 = submit_shared(shared, a0, b0)?;
        let t1 = submit_shared(shared, a1, b1)?;
        Ok((t0, t1))
    }
}

/// Free-function form of [`Service::submit_wide`], callable from graph
/// executors that hold only the shared state.
pub(crate) fn submit_wide_shared(
    shared: &Arc<Shared>,
    a: &[u128],
    b: &[u128],
    basis: &RnsBasis,
) -> Result<WideTicket, ServiceError> {
    let n = a.len();
    if b.len() != n {
        return Err(ServiceError::PairMismatch {
            left: n,
            right: b.len(),
        });
    }
    // Validate every lane up front so an unsupported basis cannot
    // strand half-submitted sibling lanes.
    for &q in basis.moduli() {
        if params_for(n, q).is_none() {
            return Err(ServiceError::UnsupportedJob { n, q });
        }
    }
    let submitted = Instant::now();
    let mut lanes = Vec::with_capacity(basis.channels());
    let mut buf = vec![0u64; n];
    for (lane, &q) in basis.moduli().iter().enumerate() {
        basis.split_lane_into(a, lane, &mut buf);
        let pa = Polynomial::from_canonical_coeffs(buf.clone(), q)
            .expect("residues are canonical mod q");
        basis.split_lane_into(b, lane, &mut buf);
        let pb = Polynomial::from_canonical_coeffs(buf.clone(), q)
            .expect("residues are canonical mod q");
        match submit_shared(shared, pa, pb) {
            Ok(ticket) => lanes.push((ticket, q)),
            Err(error) => {
                let mut st = shared.state.lock().expect("service state poisoned");
                st.wide_submitted += 1;
                st.wide_failed += 1;
                drop(st);
                return Err(ServiceError::WideLane {
                    lane,
                    q,
                    error: Box::new(error),
                });
            }
        }
    }
    {
        let mut st = shared.state.lock().expect("service state poisoned");
        st.wide_submitted += 1;
    }
    Ok(WideTicket {
        lanes,
        basis: basis.clone(),
        n,
        shared: Arc::clone(shared),
        submitted,
    })
}

fn snapshot(st: &State, hot: Option<&HotCache>) -> ServiceStats {
    ServiceStats {
        queue_depth: st.pending_jobs + st.formed_jobs,
        in_flight: st.in_flight,
        admitted: st.admitted,
        rejected: st.rejected,
        completed: st.completed,
        batches: st.batches,
        full_batches: st.full_batches,
        lingered_batches: st.lingered_batches,
        eager_batches: st.eager_batches,
        mean_occupancy: if st.batches == 0 {
            0.0
        } else {
            st.occupancy_jobs as f64 / st.batches as f64
        },
        faults_detected: st.faults_detected,
        retries: st.retries,
        recovered: st.recovered,
        quarantined_banks: st.quarantined.iter().filter(|&&b| b).count(),
        active_workers: st.active_workers,
        hot_hits: hot.map_or(0, HotCache::hits),
        hot_misses: hot.map_or(0, HotCache::misses),
        latency_samples: st.hist.count(),
        p50_us: st.hist.quantile_us(0.50).unwrap_or(0.0),
        p95_us: st.hist.quantile_us(0.95).unwrap_or(0.0),
        p99_us: st.hist.quantile_us(0.99).unwrap_or(0.0),
        wide_submitted: st.wide_submitted,
        wide_completed: st.wide_completed,
        wide_failed: st.wide_failed,
        wide_latency_samples: st.wide_hist.count(),
        wide_p50_us: st.wide_hist.quantile_us(0.50).unwrap_or(0.0),
        wide_p95_us: st.wide_hist.quantile_us(0.95).unwrap_or(0.0),
        wide_p99_us: st.wide_hist.quantile_us(0.99).unwrap_or(0.0),
        protocol: st
            .proto_lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| ProtocolLaneStats {
                kind: crate::graph::ProtocolKind::from_index(i)
                    .expect("lane index is a kind")
                    .as_str(),
                submitted: lane.submitted,
                completed: lane.completed,
                failed: lane.failed,
                latency_samples: lane.hist.count(),
                p50_us: lane.hist.quantile_us(0.50).unwrap_or(0.0),
                p95_us: lane.hist.quantile_us(0.95).unwrap_or(0.0),
                p99_us: lane.hist.quantile_us(0.99).unwrap_or(0.0),
            })
            .collect(),
    }
}

/// The batch-forming thread, reduced to the one decision that needs a
/// clock: sealing groups at their linger deadline. The work-conserving
/// eager flushes happen synchronously elsewhere — in `submit` when a
/// worker is idle at arrival, and in the worker loop when a worker goes
/// idle with partials pending — so the saturated steady state runs
/// without a former hop per batch. On shutdown it flushes everything
/// and marks the state drained so workers can exit.
fn former_loop(shared: &Shared, linger: Duration) {
    let mut st = shared.state.lock().expect("service state poisoned");
    loop {
        if st.shutdown {
            let keys: Vec<ParamKey> = st.pending.keys().copied().collect();
            for key in keys {
                shared.flush_locked(&mut st, key, FlushCause::Linger);
            }
            st.drained = true;
            shared.work.notify_all();
            return;
        }
        let now = Instant::now();
        let expired: Vec<ParamKey> = st
            .pending
            .iter()
            .filter(|(_, g)| now.duration_since(g.oldest) >= linger)
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            // A sealed group queues behind in-flight batches even when
            // every worker is busy: the deadline closes the batch to
            // further packing, it does not wait for idle capacity.
            shared.flush_locked(&mut st, key, FlushCause::Linger);
            shared.work.notify_one();
        }
        let next_deadline = st.pending.values().map(|g| g.oldest + linger).min();
        st = match next_deadline {
            None => shared.former.wait(st).expect("service state poisoned"),
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                shared
                    .former
                    .wait_timeout(st, timeout)
                    .expect("service state poisoned")
                    .0
            }
        };
    }
}

/// One virtual superbank: claims formed batches and runs them through
/// the verified `multiply_batch_outcomes` engine path, single-threaded
/// (the fleet is the parallelism), then fulfills every ticket. Returns
/// (permanently) once its bank is quarantined.
fn worker_loop(shared: &Shared, bank: usize) {
    // Each bank gets its own write-path view from the injector so
    // wear-out epochs age per bank, not per fleet.
    let writes: Option<Arc<dyn WritePath>> = shared
        .cfg
        .injector
        .as_ref()
        .map(|i| i.bank_writes(bank as u32));
    let mut accelerators: HashMap<ParamKey, CryptoPim> = HashMap::new();
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                if let Some(batch) = st.formed.pop_front() {
                    st.formed_jobs -= batch.jobs.len();
                    st.in_flight += batch.jobs.len();
                    st.busy_workers += 1;
                    // Dispatch freed admission-queue space.
                    shared.admit.notify_all();
                    break batch;
                }
                if !st.pending.is_empty() {
                    // Self-serve: this worker is idle, so by the
                    // work-conserving rule the oldest pending partial
                    // ships now — flushed here and popped on the next
                    // turn of this loop, with no former hop and no
                    // condvar wake.
                    let key = *st
                        .pending
                        .iter()
                        .min_by_key(|(_, g)| g.oldest)
                        .map(|(k, _)| k)
                        .expect("pending non-empty");
                    shared.flush_locked(&mut st, key, FlushCause::Eager);
                    continue;
                }
                if st.shutdown && st.drained {
                    return;
                }
                st = shared.work.wait(st).expect("service state poisoned");
            }
        };
        if run_batch(shared, &mut accelerators, &writes, batch, bank) {
            // Quarantined: this bank leaves the fleet. Remaining (or
            // requeued) work belongs to the surviving workers.
            return;
        }
    }
}

/// Executes one formed batch: per-job outcomes, detected-fault retry
/// bookkeeping, and the quarantine decision. Returns whether this bank
/// was quarantined by the batch.
fn run_batch(
    shared: &Shared,
    accelerators: &mut HashMap<ParamKey, CryptoPim>,
    writes: &Option<Arc<dyn WritePath>>,
    batch: FormedBatch,
    bank: usize,
) -> bool {
    let dispatch = Instant::now();
    let count = batch.jobs.len();
    let key = batch.key;
    let mut pairs = Vec::with_capacity(count);
    let mut metas = Vec::with_capacity(count);
    for job in batch.jobs {
        pairs.push((job.a, job.b));
        metas.push((job.ticket, job.submitted, job.attempts));
    }

    let acc = match accelerators.entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
        std::collections::hash_map::Entry::Vacant(e) => params_for(key.0, key.1)
            .ok_or(PimError::Math(modmath::Error::InvalidDegree { n: key.0 }))
            .and_then(|p| CryptoPim::new(&p))
            // Workers run their engine sequentially: the fleet supplies
            // the host parallelism, and nested fan-out would let worker
            // counts contend for the same cores.
            .map(|acc| {
                e.insert(
                    acc.with_threads(Threads::Fixed(1))
                        .with_check(shared.cfg.check)
                        .with_write_path(writes.clone())
                        .with_hot_cache(shared.hot.clone()),
                )
            }),
    };
    // Per-job outcomes: batch wall-clock is measured right here, so the
    // analytic burst simulation of `multiply_batch` (a fixed tens-of-µs
    // cost per batch, painful at low occupancy) is skipped, and one
    // corrupt lane fails alone instead of failing its batch-mates.
    let outcome = acc.and_then(|acc| multiply_batch_outcomes(acc, &pairs));
    let done = Instant::now();
    let service_us = done.duration_since(dispatch).as_secs_f64() * 1e6;
    let lanes = ArchConfig::packed_lanes(key.0).expect("validated at submit");

    let mut requeue: Vec<Job> = Vec::new();
    let mut fulfilled_at: Vec<Instant> = Vec::with_capacity(count);
    let mut faults = 0u64;
    let mut recovered = 0u64;

    match outcome {
        Ok(outcomes) => {
            for ((result, (a, b)), (ticket, submitted, attempts)) in
                outcomes.into_iter().zip(pairs).zip(metas)
            {
                match result {
                    Ok(product) => {
                        if attempts > 1 {
                            recovered += 1;
                        }
                        fulfilled_at.push(submitted);
                        fulfill(
                            &ticket,
                            Ok(CompletedJob {
                                product,
                                queue_us: dispatch.duration_since(submitted).as_secs_f64() * 1e6,
                                service_us,
                                batch_jobs: count,
                                packed_lanes: lanes,
                                attempts,
                            }),
                        );
                    }
                    Err(PimError::CorruptResult(report)) => {
                        faults += 1;
                        if attempts < shared.cfg.max_attempts {
                            // Requeue at the front: the retry beats any
                            // newly formed work, bounding its added
                            // latency to one batch trip per attempt.
                            requeue.push(Job {
                                a,
                                b,
                                ticket,
                                submitted,
                                attempts: attempts + 1,
                            });
                        } else {
                            fulfilled_at.push(submitted);
                            fulfill(
                                &ticket,
                                Err(ServiceError::FaultUnrecovered {
                                    bank: report.bank,
                                    attempts,
                                }),
                            );
                        }
                    }
                    Err(e) => {
                        fulfilled_at.push(submitted);
                        fulfill(&ticket, Err(ServiceError::Pim(e)));
                    }
                }
            }
        }
        Err(e) => {
            for (ticket, submitted, _) in &metas {
                fulfilled_at.push(*submitted);
                fulfill(ticket, Err(ServiceError::Pim(e.clone())));
            }
        }
    }

    let retried = requeue.len();
    let mut st = shared.state.lock().expect("service state poisoned");
    st.in_flight -= count;
    st.busy_workers -= 1;
    st.completed += (count - retried) as u64;
    st.faults_detected += faults;
    st.retries += retried as u64;
    st.recovered += recovered;
    for submitted in &fulfilled_at {
        st.hist
            .record_us(done.duration_since(*submitted).as_micros() as u64);
    }
    if !requeue.is_empty() {
        st.formed_jobs += retried;
        st.formed.push_front(FormedBatch { key, jobs: requeue });
        shared.work.notify_one();
    }
    // Quarantine policy: K consecutive faulted batches retire the bank.
    if faults > 0 {
        st.bank_streak[bank] += 1;
        if st.bank_streak[bank] >= shared.cfg.quarantine_after && !st.quarantined[bank] {
            st.quarantined[bank] = true;
            st.active_workers -= 1;
            // Epoch bump: transforms the quarantined bank may have
            // produced must never be replayed from the cache.
            if let Some(hot) = &shared.hot {
                hot.bump_epoch();
            }
            if st.active_workers == 0 {
                degrade(shared, &mut st);
            }
            // Wake Block-mode submitters (capacity changed or degraded)
            // and idle workers (requeued work may need a new owner).
            shared.admit.notify_all();
            shared.work.notify_all();
            return true;
        }
    } else {
        st.bank_streak[bank] = 0;
    }
    false
}

/// Last bank quarantined: fail everything queued (no bank can ever run
/// it) and refuse future submissions — the service still answers, it
/// just answers `Overloaded`. It never returns a wrong product.
fn degrade(shared: &Shared, st: &mut State) {
    st.degraded = true;
    let capacity = shared.cfg.queue_capacity;
    for batch in st.formed.drain(..) {
        for job in batch.jobs {
            fulfill(&job.ticket, Err(ServiceError::Overloaded { capacity }));
            st.completed += 1;
        }
    }
    st.formed_jobs = 0;
    for (_, group) in st.pending.drain() {
        for job in group.jobs {
            fulfill(&job.ticket, Err(ServiceError::Overloaded { capacity }));
            st.completed += 1;
        }
    }
    st.pending_jobs = 0;
    shared.former.notify_all();
}

fn fulfill(ticket: &Arc<TicketState>, result: Result<CompletedJob, ServiceError>) {
    let mut slot = ticket.slot.lock().expect("ticket poisoned");
    *slot = Some(result);
    ticket.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim::fault::{Injector, WritePath as WritePathTrait};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Test injector: bank 0 corrupts bit 15 of the first premul write
    /// for its first `bad_ops` operations (`u64::MAX` = forever); other
    /// banks are clean. At the test degrees `q < 2^13`, so OR-ing bit 15
    /// always changes the stored word, and `2^15 mod q ≠ 0` keeps the
    /// corruption alive through re-canonicalization — every faulted op
    /// yields a wrong product.
    #[derive(Debug)]
    struct StuckBitInjector {
        bad_ops: u64,
    }

    #[derive(Debug)]
    struct StuckBitPath {
        bank: u32,
        bad_ops: u64,
        epoch: AtomicU64,
    }

    impl Injector for StuckBitInjector {
        fn bank_writes(&self, bank: u32) -> Arc<dyn WritePathTrait> {
            Arc::new(StuckBitPath {
                bank,
                bad_ops: if bank == 0 { self.bad_ops } else { 0 },
                epoch: AtomicU64::new(0),
            })
        }
    }

    impl WritePathTrait for StuckBitPath {
        fn armed(&self) -> bool {
            self.bad_ops > 0
        }
        fn begin_op(&self) {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
        fn store(&self, block: u32, row: u32, value: u64) -> u64 {
            if block == 0 && row == 0 && self.epoch.load(Ordering::Relaxed) <= self.bad_ops {
                value | (1 << 15)
            } else {
                value
            }
        }
        fn bank(&self) -> u32 {
            self.bank
        }
        fn suspect_block(&self) -> Option<u32> {
            Some(0)
        }
    }

    fn poly(n: usize, q: u64, seed: u64) -> Polynomial {
        Polynomial::from_coeffs(
            (0..n as u64).map(|i| (i * 31 + seed * 7 + 1) % q).collect(),
            q,
        )
        .unwrap()
    }

    #[test]
    fn single_job_round_trip() {
        let svc = Service::start(ServiceConfig::default());
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        use ntt::negacyclic::PolyMultiplier;
        let (a, b) = (poly(256, p.q, 1), poly(256, p.q, 2));
        let direct = acc.multiply(&a, &b).unwrap();
        let done = svc
            .submit(a, b)
            .expect("admitted")
            .wait()
            .expect("executed");
        assert_eq!(done.product, direct);
        assert_eq!(done.packed_lanes, 64);
        assert!(done.batch_jobs >= 1);
        assert!(done.queue_us >= 0.0 && done.service_us > 0.0);
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn full_batch_flushes_without_linger() {
        // 64 lanes at n = 256: with the lone worker saturated (so the
        // eager path cannot drain singles) and an hour-long linger, 64
        // same-key jobs must still flush — as one full batch.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            linger: Duration::from_secs(3600),
            ..ServiceConfig::default()
        });
        let blockers = saturate_one_worker(&svc, 2);
        let q = ParamSet::for_degree(256).unwrap().q;
        let tickets: Vec<JobTicket> = (0..64)
            .map(|k| {
                svc.submit(poly(256, q, k), poly(256, q, k + 100))
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            let done = t.wait().expect("executed");
            assert_eq!(done.batch_jobs, 64, "full-occupancy batch");
        }
        for b in blockers {
            b.wait().expect("executed");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.batches, 3, "two blocker batches plus one full batch");
        assert_eq!(
            stats.full_batches, 3,
            "32k blockers are full single-lane batches"
        );
        assert_eq!(stats.eager_batches, 0);
        assert_eq!(stats.lingered_batches, 0);
    }

    #[test]
    fn idle_fleet_flushes_partials_eagerly() {
        // A lone job with an hour-long linger and an idle fleet must
        // not wait: the work-conserving former ships it immediately.
        let svc = Service::start(ServiceConfig {
            linger: Duration::from_secs(3600),
            ..ServiceConfig::default()
        });
        let q = ParamSet::for_degree(512).unwrap().q;
        let t = svc
            .submit(poly(512, q, 3), poly(512, q, 4))
            .expect("admitted");
        let done = t.wait().expect("executed");
        assert_eq!(done.batch_jobs, 1, "lone job shipped eagerly");
        let stats = svc.shutdown();
        assert_eq!(stats.eager_batches, 1);
        assert_eq!(stats.lingered_batches, 0);
    }

    /// Occupies the single worker of `svc` for long enough to submit
    /// more work underneath it. Degree-32k jobs have exactly one
    /// packed lane, so each submit forms a *full* batch inline (no
    /// former involvement) and a debug-mode 32k multiply runs long;
    /// `count` of them keep the lone worker saturated back to back
    /// (the formed queue covers the gap between batches in the
    /// idle-capacity computation).
    fn saturate_one_worker(svc: &Service, count: usize) -> Vec<JobTicket> {
        let q = ParamSet::for_degree(32768).unwrap().q;
        let tickets: Vec<JobTicket> = (0..count as u64)
            .map(|k| {
                svc.submit(poly(32768, q, k), poly(32768, q, k + 9))
                    .expect("admitted")
            })
            .collect();
        // Wait until the first batch is actually on the worker. The
        // second condition is a hang-safe escape: if the blockers
        // somehow drained first, the caller's premise assertions fail
        // loudly instead of this loop spinning forever.
        while svc.stats().in_flight == 0 && tickets.iter().any(|t| !t.is_done()) {
            std::thread::yield_now();
        }
        tickets
    }

    #[test]
    fn wait_timeout_expires_then_collects() {
        // A job stuck behind a saturated single worker times out on a
        // short wait with a typed error, stays claimable, and resolves
        // to the correct product on a later (patient) wait.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            linger: Duration::from_nanos(1),
            ..ServiceConfig::default()
        });
        let blockers = saturate_one_worker(&svc, 2);
        let p = ParamSet::for_degree(256).unwrap();
        use ntt::negacyclic::PolyMultiplier;
        let direct = CryptoPim::new(&p)
            .unwrap()
            .multiply(&poly(256, p.q, 1), &poly(256, p.q, 2))
            .unwrap();
        let ticket = svc
            .submit(poly(256, p.q, 1), poly(256, p.q, 2))
            .expect("admitted");
        let err = ticket
            .wait_timeout(Duration::from_millis(1))
            .expect_err("worker still busy with 32k blockers");
        assert_eq!(err, ServiceError::WaitTimeout { timeout_ms: 1 });
        let done = ticket
            .wait_timeout(Duration::from_secs(300))
            .expect("eventually served");
        assert_eq!(done.product, direct);
        // The successful wait took the result: the ticket now reads as
        // never-completed and a further short wait times out again.
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(1)).err(),
            Some(ServiceError::WaitTimeout { timeout_ms: 1 })
        );
        for b in blockers {
            b.wait().expect("executed");
        }
        svc.shutdown();
    }

    #[test]
    fn linger_holds_partials_while_fleet_saturated() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            linger: Duration::from_nanos(1),
            ..ServiceConfig::default()
        });
        let blockers = saturate_one_worker(&svc, 2);
        // With the worker busy, this partial cannot flush eagerly; the
        // already-expired linger deadline flushes it on the former's
        // next wakeup instead.
        let q = ParamSet::for_degree(1024).unwrap().q;
        let t = svc
            .submit(poly(1024, q, 5), poly(1024, q, 6))
            .expect("admitted");
        t.wait().expect("executed");
        for b in blockers {
            b.wait().expect("executed");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.lingered_batches, 1, "{stats}");
    }

    #[test]
    fn reject_policy_returns_typed_error() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
            linger: Duration::from_secs(3600),
            ..ServiceConfig::default()
        });
        // Saturate the worker so the next job stays queued: eager
        // flushing needs idle capacity, and the linger is an hour.
        // One blocker only — its batch forms inline and is popped by
        // the worker, so it never counts against the queue bound.
        let blockers = saturate_one_worker(&svc, 1);
        let q = ParamSet::for_degree(1024).unwrap().q;
        let first = svc
            .submit(poly(1024, q, 1), poly(1024, q, 2))
            .expect("fits the queue");
        let second = svc.submit(poly(1024, q, 3), poly(1024, q, 4));
        assert_eq!(second.err(), Some(ServiceError::Overloaded { capacity: 1 }));
        let stats = svc.stats();
        assert_eq!(stats.rejected, 1);
        drop(first);
        drop(blockers);
        let final_stats = svc.shutdown();
        assert_eq!(final_stats.admitted, 2);
        assert_eq!(final_stats.completed, 2, "drained on shutdown");
    }

    #[test]
    fn invalid_jobs_fail_synchronously() {
        let svc = Service::start(ServiceConfig::default());
        let q = ParamSet::for_degree(256).unwrap().q;
        assert_eq!(
            svc.submit(poly(256, q, 1), poly(512, 12289, 1)).err(),
            Some(ServiceError::PairMismatch {
                left: 256,
                right: 512
            })
        );
        // Valid ring, but 17 − 1 = 16 has no order-512 subgroup: no
        // negacyclic NTT exists at this degree, so no lane (wide or
        // narrow) can run it.
        let wrong_q = Polynomial::from_coeffs(vec![1; 256], 17).unwrap();
        assert_eq!(
            svc.submit(wrong_q.clone(), wrong_q).err(),
            Some(ServiceError::UnsupportedJob { n: 256, q: 17 })
        );
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn off_table_ntt_friendly_primes_are_served() {
        // Residue lanes of wide jobs run under discovered primes, not
        // the paper-table assignment; the scheduler must serve them
        // bit-exact through the generic-modulus engine path.
        let svc = Service::start(ServiceConfig::default());
        let q = modmath::primes::find_ntt_prime(256, 1 << 20).unwrap();
        let p = ParamSet::custom(256, q, 32).unwrap();
        use ntt::negacyclic::PolyMultiplier;
        let direct = CryptoPim::new(&p)
            .unwrap()
            .multiply(&poly(256, q, 1), &poly(256, q, 2))
            .unwrap();
        let done = svc
            .submit(poly(256, q, 1), poly(256, q, 2))
            .expect("admitted")
            .wait()
            .expect("executed");
        assert_eq!(done.product, direct);
        svc.shutdown();
    }

    #[test]
    fn wide_job_recombines_bit_exact() {
        let svc = Service::start(ServiceConfig::default());
        let n = 256;
        let basis = RnsBasis::discover(n, 3, 1 << 20).unwrap();
        let seq = ntt::rns::RnsMultiplier::with_basis(n, basis.clone()).unwrap();
        let q = basis.modulus();
        let wide_operand = |seed: u128| -> Vec<u128> {
            (0..n as u128).map(|i| (i * i * 977 + seed) % q).collect()
        };
        let (a, b) = (wide_operand(3), wide_operand(11));
        let want = seq.multiply(&a, &b).unwrap();
        let done = svc
            .submit_wide(&a, &b, &basis)
            .expect("admitted")
            .wait()
            .expect("all lanes landed");
        assert_eq!(done.product, want, "recombined == sequential residue loop");
        assert_eq!(done.lanes.len(), 3);
        assert!(done.recombine_us >= 0.0);
        let stats = svc.shutdown();
        assert_eq!(stats.wide_submitted, 1);
        assert_eq!(stats.wide_completed, 1);
        assert_eq!(stats.wide_failed, 0);
        assert_eq!(stats.wide_latency_samples, 1);
        assert_eq!(stats.admitted, 3, "one narrow job per residue lane");
    }

    #[test]
    fn wide_job_rejects_unsupported_basis_before_queueing() {
        let svc = Service::start(ServiceConfig::default());
        // Valid basis over primes that are not NTT-friendly at n = 256.
        let basis = RnsBasis::new(&[17, 23]).unwrap();
        let a = vec![1u128; 256];
        assert_eq!(
            svc.submit_wide(&a, &a, &basis).err(),
            Some(ServiceError::UnsupportedJob { n: 256, q: 17 })
        );
        let b = vec![1u128; 128];
        let basis_ok = RnsBasis::discover(256, 2, 1 << 20).unwrap();
        assert_eq!(
            svc.submit_wide(&a, &b, &basis_ok).err(),
            Some(ServiceError::PairMismatch {
                left: 256,
                right: 128
            })
        );
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 0, "nothing queued for a rejected basis");
        assert_eq!(stats.wide_submitted, 0);
    }

    #[test]
    fn wide_lane_fault_recovers_without_wrong_recombination() {
        // Bank 0 corrupts its first operation: exactly one residue lane
        // of the wide job is detected, retried, and recovered — and the
        // recombined product still matches the sequential reference.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            check: CheckPolicy::Recompute,
            max_attempts: 3,
            quarantine_after: 10,
            injector: Some(Arc::new(StuckBitInjector { bad_ops: 1 })),
            ..ServiceConfig::default()
        });
        let n = 256;
        let basis = RnsBasis::discover(n, 2, 1 << 20).unwrap();
        let seq = ntt::rns::RnsMultiplier::with_basis(n, basis.clone()).unwrap();
        let q = basis.modulus();
        let a: Vec<u128> = (0..n as u128).map(|i| (i * 131 + 7) % q).collect();
        let b: Vec<u128> = (0..n as u128).map(|i| (i * 13 + 29) % q).collect();
        let want = seq.multiply(&a, &b).unwrap();
        let done = svc
            .submit_wide(&a, &b, &basis)
            .expect("admitted")
            .wait()
            .expect("faulted lane recovered");
        assert_eq!(done.product, want, "no wrong recombined answer");
        assert!(
            done.lanes.iter().any(|l| l.attempts > 1),
            "exactly the faulted lane retried: {:?}",
            done.lanes.iter().map(|l| l.attempts).collect::<Vec<_>>()
        );
        let stats = svc.shutdown();
        assert_eq!(stats.faults_detected, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.wide_completed, 1);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let svc = Service::start(ServiceConfig::default());
        // Reach into the shared state the way shutdown does, then try
        // to submit: drop-based shutdown makes this race-free to test
        // only via the consuming API, so use two services.
        let q = ParamSet::for_degree(256).unwrap().q;
        let stats = svc.shutdown();
        assert_eq!(stats.admitted, 0);
        let svc2 = Service::start(ServiceConfig::default());
        {
            let mut st = svc2.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        assert_eq!(
            svc2.submit(poly(256, q, 1), poly(256, q, 2)).err(),
            Some(ServiceError::ShuttingDown)
        );
    }

    #[test]
    fn transient_fault_is_detected_retried_and_recovered() {
        // Bank 0 corrupts exactly its first operation; the residue
        // check catches it, the job requeues, and attempt 2 runs clean.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            check: CheckPolicy::residue(4, 0xFEED),
            max_attempts: 3,
            quarantine_after: 10,
            injector: Some(Arc::new(StuckBitInjector { bad_ops: 1 })),
            ..ServiceConfig::default()
        });
        let p = ParamSet::for_degree(256).unwrap();
        use ntt::negacyclic::PolyMultiplier;
        let direct = CryptoPim::new(&p)
            .unwrap()
            .multiply(&poly(256, p.q, 1), &poly(256, p.q, 2))
            .unwrap();
        let done = svc
            .submit(poly(256, p.q, 1), poly(256, p.q, 2))
            .expect("admitted")
            .wait()
            .expect("recovered on retry");
        assert_eq!(done.product, direct, "recovered product is bit-exact");
        assert_eq!(done.attempts, 2);
        let stats = svc.shutdown();
        assert_eq!(stats.faults_detected, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.quarantined_banks, 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn permanent_fault_quarantines_and_degrades() {
        // One worker, permanently corrupt: attempts exhaust into
        // FaultUnrecovered, the bank quarantines, and the degraded
        // service turns new submissions away instead of lying.
        let svc = Service::start(ServiceConfig {
            workers: 1,
            check: CheckPolicy::residue(4, 0xBEEF),
            max_attempts: 2,
            quarantine_after: 2,
            injector: Some(Arc::new(StuckBitInjector { bad_ops: u64::MAX })),
            ..ServiceConfig::default()
        });
        let q = ParamSet::for_degree(256).unwrap().q;
        let err = svc
            .submit(poly(256, q, 1), poly(256, q, 2))
            .expect("admitted")
            .wait()
            .expect_err("corruption persists through every attempt");
        assert_eq!(
            err,
            ServiceError::FaultUnrecovered {
                bank: 0,
                attempts: 2
            }
        );
        // Quarantine bookkeeping lands just after ticket fulfillment;
        // wait for it before probing the degraded admission path.
        while svc.stats().active_workers > 0 {
            std::thread::yield_now();
        }
        let refused = svc.submit(poly(256, q, 3), poly(256, q, 4)).err();
        assert!(
            matches!(refused, Some(ServiceError::Overloaded { .. })),
            "degraded fleet refuses instead of corrupting: {refused:?}"
        );
        let stats = svc.shutdown();
        assert_eq!(stats.faults_detected, 2, "both attempts flagged");
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recovered, 0);
        assert_eq!(stats.quarantined_banks, 1);
        assert_eq!(stats.active_workers, 0);
    }

    #[test]
    fn surviving_banks_absorb_a_quarantined_banks_work() {
        // Two banks, only bank 0 faulty, hair-trigger quarantine: every
        // job must still come back with the correct product — retries
        // migrate to the clean bank once bank 0 is out.
        let svc = Service::start(ServiceConfig {
            workers: 2,
            check: CheckPolicy::residue(4, 0xACE),
            max_attempts: 3,
            quarantine_after: 1,
            injector: Some(Arc::new(StuckBitInjector { bad_ops: u64::MAX })),
            ..ServiceConfig::default()
        });
        let p = ParamSet::for_degree(256).unwrap();
        use ntt::negacyclic::PolyMultiplier;
        let acc = CryptoPim::new(&p).unwrap();
        for k in 0..8u64 {
            let (a, b) = (poly(256, p.q, k), poly(256, p.q, k + 50));
            let direct = acc.multiply(&a, &b).unwrap();
            let done = svc.submit(a, b).expect("admitted").wait().expect("served");
            assert_eq!(done.product, direct, "job {k}");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 8);
        assert!(stats.quarantined_banks <= 1);
        assert!(stats.active_workers >= 1);
        assert_eq!(
            stats.faults_detected, stats.recovered,
            "every detected fault was recovered: {stats}"
        );
    }

    #[test]
    fn hot_cache_serves_reused_keys_bit_exact() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            hot_capacity: 8,
            ..ServiceConfig::default()
        });
        let p = ParamSet::for_degree(256).unwrap();
        use ntt::negacyclic::PolyMultiplier;
        let acc = CryptoPim::new(&p).unwrap();
        let a = poly(256, p.q, 9);
        for k in 0..6u64 {
            let b = poly(256, p.q, k + 40);
            let direct = acc.multiply(&a, &b).unwrap();
            let done = svc
                .submit(a.clone(), b)
                .expect("admitted")
                .wait()
                .expect("served");
            assert_eq!(done.product, direct, "job {k}");
        }
        let stats = svc.shutdown();
        assert!(stats.hot_hits >= 1, "reused key must hit: {stats}");
        assert!(stats.hot_misses >= 1, "first sight of the key misses");
    }

    #[test]
    fn mixed_keys_never_share_a_batch() {
        let svc = Service::start(ServiceConfig {
            linger: Duration::from_millis(1),
            ..ServiceConfig::default()
        });
        let q256 = ParamSet::for_degree(256).unwrap().q;
        let q512 = ParamSet::for_degree(512).unwrap().q;
        let t1 = svc
            .submit(poly(256, q256, 1), poly(256, q256, 2))
            .expect("admitted");
        let t2 = svc
            .submit(poly(512, q512, 1), poly(512, q512, 2))
            .expect("admitted");
        let d1 = t1.wait().expect("executed");
        let d2 = t2.wait().expect("executed");
        assert_eq!(d1.product.degree_bound(), 256);
        assert_eq!(d2.product.degree_bound(), 512);
        let stats = svc.shutdown();
        assert_eq!(stats.batches, 2, "parameter keys form separate batches");
    }
}

//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the benchmark-harness surface its `[[bench]]` targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology: each benchmark is calibrated with a short warmup to
//! pick an iteration count whose batch runtime is measurable, then
//! timed over a number of batches (`sample_size`, default 20) and
//! reported as min/median/max ns per iteration. The median is the
//! headline number. This is deliberately simpler than statistical
//! criterion — no outlier analysis or HTML reports — but it is stable
//! enough to compare before/after on the same machine, which is all
//! the perf-tracking harness here needs.
//!
//! Environment knobs: `CRYPTOPIM_BENCH_FILTER` substring-filters
//! benchmark IDs; `CRYPTOPIM_BENCH_JSON` (a path) appends one JSON
//! line per benchmark, which `bench --bin cli -- --json` consumes.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target total measurement time per benchmark, split across samples.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Benchmark identifier, rendered as `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter, as `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from a parameter alone (the group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    /// Measured ns/iter samples, filled by [`Bencher::iter`].
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count whose batch
        // takes long enough for the clock to resolve it well.
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            let per_sample = MEASURE_BUDGET
                .checked_div(self.sample_size as u32)
                .unwrap_or(Duration::from_millis(10));
            if elapsed >= per_sample || iters >= (1 << 30) {
                break;
            }
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                let want = per_sample.as_nanos() / elapsed.as_nanos().max(1) + 1;
                want.min(16) as u64
            };
            iters = iters.saturating_mul(grow.max(2)).min(1 << 30);
        }

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns.push(ns);
        }
    }
}

/// Summary statistics for one benchmark.
#[derive(Debug, Clone)]
struct Report {
    id: String,
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: std::env::var("CRYPTOPIM_BENCH_FILTER").ok(),
            json_path: std::env::var("CRYPTOPIM_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// No-op compatibility hook (the real crate parses CLI args here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let id = id.to_string();
        self.run_one(&id, 20, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut s = bencher.samples_ns;
        if s.is_empty() {
            eprintln!("warning: benchmark {id} recorded no samples (missing b.iter call?)");
            return;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let report = Report {
            id: id.to_string(),
            min_ns: s[0],
            median_ns: s[s.len() / 2],
            max_ns: s[s.len() - 1],
        };
        println!(
            "{:<40} time: [{} {} {}]",
            report.id,
            fmt_time(report.min_ns),
            fmt_time(report.median_ns),
            fmt_time(report.max_ns),
        );
        if let Some(path) = &self.json_path {
            let line = format!(
                "{{\"id\":\"{}\",\"min_ns\":{:.2},\"median_ns\":{:.2},\"max_ns\":{:.2}}}\n",
                report.id, report.min_ns, report.median_ns, report.max_ns
            );
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut file| file.write_all(line.as_bytes()));
            if let Err(e) = appended {
                eprintln!("warning: could not append to {path}: {e}");
            }
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&full_id, sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full_id, sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        for size in [64usize, 256] {
            group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
                b.iter(|| (0..s as u64).sum::<u64>());
            });
        }
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        smoke();
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_size: 4,
            samples_ns: Vec::new(),
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples_ns.len(), 4);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn ids_render_as_expected() {
        assert_eq!(BenchmarkId::new("fwd", 4096).id, "fwd/4096");
        assert_eq!(BenchmarkId::from_parameter(1024).id, "1024");
    }
}

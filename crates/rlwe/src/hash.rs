//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The CCA-style KEM ([`crate::kem`]) needs a hash for its
//! Fujisaki–Okamoto re-encryption transform; the dependency policy of
//! this workspace (DESIGN.md) keeps external crates to `rand`,
//! `proptest`, `criterion`, so the primitive lives here. Verified
//! against the FIPS test vectors.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; 32];

/// Computes SHA-256 of `data`.
///
/// # Example
///
/// ```
/// let d = rlwe::hash::sha256(b"abc");
/// assert_eq!(d[0], 0xba);
/// assert_eq!(d[31], 0xad);
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut state = H0;
    let bit_len = (data.len() as u64).wrapping_mul(8);

    // Process full blocks, then the padded tail.
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block.try_into().expect("exact chunk"));
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() < 56 { 1 } else { 2 };
    let len_pos = tail_blocks * 64 - 8;
    tail[len_pos..len_pos + 8].copy_from_slice(&bit_len.to_be_bytes());
    for i in 0..tail_blocks {
        compress(
            &mut state,
            tail[i * 64..(i + 1) * 64].try_into().expect("block"),
        );
    }

    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Domain-separated hash: `SHA-256(domain || 0x00 || data)`.
pub fn sha256_tagged(domain: &[u8], data: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(domain.len() + 1 + data.len());
    buf.extend_from_slice(domain);
    buf.push(0);
    buf.extend_from_slice(data);
    sha256(&buf)
}

/// Expands a 32-byte seed into `len` pseudo-random bytes by counter-mode
/// hashing (`SHA-256(seed || ctr)`), the XOF stand-in the KEM uses.
pub fn expand(seed: &Digest, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut ctr = 0u32;
    while out.len() < len {
        let mut buf = [0u8; 36];
        buf[..32].copy_from_slice(seed);
        buf[32..].copy_from_slice(&ctr.to_be_bytes());
        out.extend_from_slice(&sha256(&buf));
        ctr += 1;
    }
    out.truncate(len);
    out
}

/// Lowercase hex rendering of a digest.
pub fn hex(d: &Digest) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56/64-byte padding edges must all work.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5Au8; len];
            let d1 = sha256(&data);
            let d2 = sha256(&data);
            assert_eq!(d1, d2);
            // Flip one byte → different digest.
            let mut other = data.clone();
            other[len / 2] ^= 1;
            assert_ne!(sha256(&other), d1, "len = {len}");
        }
    }

    #[test]
    fn tagged_separates_domains() {
        assert_ne!(
            sha256_tagged(b"enc", b"data"),
            sha256_tagged(b"key", b"data")
        );
        // And differs from a naive concatenation collision.
        assert_ne!(sha256_tagged(b"ab", b"c"), sha256_tagged(b"a", b"bc"));
    }

    #[test]
    fn expand_is_deterministic_and_long() {
        let seed = sha256(b"seed");
        let a = expand(&seed, 100);
        let b = expand(&seed, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = expand(&seed, 33);
        assert_eq!(&a[..33], &c[..]);
        // Reasonably balanced bits.
        let ones: u32 = a.iter().map(|b| b.count_ones()).sum();
        assert!((300..500).contains(&ones), "{ones} ones in 800 bits");
    }
}

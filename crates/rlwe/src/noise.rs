//! Noise measurement and budget estimation.
//!
//! Every RLWE ciphertext hides the message under additive noise; the
//! message survives decryption while the noise's largest coefficient
//! stays below `q/4`. This module measures the *actual* noise of a
//! ciphertext (given the secret key) and predicts growth under
//! homomorphic operations, so the HE demo's limits are engineering
//! numbers rather than folklore.

use crate::pke::{Ciphertext, SecretKey};
use crate::Result;
use ntt::negacyclic::PolyMultiplier;

/// A measured noise report for one ciphertext.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseReport {
    /// Largest absolute noise coefficient.
    pub max_abs: u64,
    /// Root-mean-square noise coefficient.
    pub rms: f64,
    /// Decryption fails when `max_abs` reaches this bound (`q/4`).
    pub failure_bound: u64,
    /// Remaining budget in bits: `log2(failure_bound / max_abs)`.
    pub budget_bits: f64,
}

impl NoiseReport {
    /// True while decryption is guaranteed correct.
    pub fn decryptable(&self) -> bool {
        self.max_abs < self.failure_bound
    }
}

/// Measures the exact noise of `ct` under `sk`, assuming the embedded
/// message bits are `message` (bit `i` in coefficient `i`; missing bits
/// are zero).
///
/// # Errors
///
/// Propagates multiplier failures.
pub fn measure<M: PolyMultiplier + ?Sized>(
    sk: &SecretKey,
    ct: &Ciphertext,
    message: &[u8],
    mult: &M,
) -> Result<NoiseReport> {
    let noisy = sk.decrypt_poly(ct, mult)?;
    let q = sk.params().q;
    let delta = q.div_ceil(2) as i64;
    let n = sk.params().n;
    let mut max_abs = 0u64;
    let mut sum_sq = 0.0f64;
    for (i, &c) in noisy.to_centered().iter().enumerate() {
        let bit = message.get(i).copied().unwrap_or(0) & 1;
        // Remove the message contribution; the remainder is pure noise.
        // Δ·m is represented centered: Δ·1 ≈ ±q/2 wraps to −(q−Δ)…
        let mut noise = if bit == 1 {
            // The encoded Δ may appear as +Δ or as Δ − q once centered.
            let cand1 = c - delta;
            let cand2 = c + (q as i64 - delta);
            if cand1.abs() <= cand2.abs() {
                cand1
            } else {
                cand2
            }
        } else {
            c
        };
        if noise.abs() > q as i64 / 2 {
            noise = noise.rem_euclid(q as i64);
            if noise > q as i64 / 2 {
                noise -= q as i64;
            }
        }
        max_abs = max_abs.max(noise.unsigned_abs());
        sum_sq += (noise * noise) as f64;
    }
    let failure_bound = q / 4;
    let rms = (sum_sq / n as f64).sqrt();
    let budget_bits = if max_abs == 0 {
        f64::INFINITY
    } else {
        (failure_bound as f64 / max_abs as f64).log2()
    };
    Ok(NoiseReport {
        max_abs,
        rms,
        failure_bound,
        budget_bits,
    })
}

/// Predicted RMS noise of a fresh encryption: the decryption noise is
/// `e·r + e₂ − s·e₁`, a sum of `2n` products of independent CBD_η
/// samples plus one CBD_η term — variance `≈ 2n·(η/2)² + η/2`.
pub fn predicted_fresh_rms(n: usize, eta: u32) -> f64 {
    let var = eta as f64 / 2.0;
    (2.0 * n as f64 * var * var + var).sqrt()
}

/// Predicted RMS after `k` homomorphic additions of fresh ciphertexts:
/// independent noises add in variance (`√(k+1)` growth).
pub fn predicted_rms_after_additions(n: usize, eta: u32, additions: u32) -> f64 {
    predicted_fresh_rms(n, eta) * ((additions + 1) as f64).sqrt()
}

/// Maximum homomorphic additions with failure probability below
/// ~2^-40 per coefficient: keeps `σ·13 < q/4` (13σ tail bound).
pub fn addition_capacity(n: usize, q: u64, eta: u32) -> u32 {
    let sigma = predicted_fresh_rms(n, eta);
    let limit = q as f64 / 4.0 / (13.0 * sigma);
    (limit * limit).floor().max(0.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pke::{KeyPair, ETA};
    use crate::she;
    use modmath::params::ParamSet;
    use ntt::negacyclic::NttMultiplier;

    fn setup(n: usize) -> (ParamSet, NttMultiplier, KeyPair) {
        let p = ParamSet::for_degree(n).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let k = KeyPair::generate(&p, &m, 5).unwrap();
        (p, m, k)
    }

    #[test]
    fn fresh_noise_is_small_and_decryptable() {
        for n in [256usize, 1024, 4096] {
            let (p, m, keys) = setup(n);
            let msg: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            let ct = keys.public().encrypt_bits(&msg, &m, 9).unwrap();
            let report = measure(keys.secret(), &ct, &msg, &m).unwrap();
            assert!(report.decryptable(), "n = {n}");
            assert!(report.max_abs > 0, "noise exists");
            assert!(report.max_abs < p.q / 16, "fresh noise is far from bound");
            assert!(report.budget_bits > 2.0);
        }
    }

    #[test]
    fn measured_rms_tracks_prediction() {
        let (_, m, keys) = setup(4096);
        let msg = vec![0u8; 4096];
        let ct = keys.public().encrypt_bits(&msg, &m, 3).unwrap();
        let report = measure(keys.secret(), &ct, &msg, &m).unwrap();
        let predicted = predicted_fresh_rms(4096, ETA);
        let ratio = report.rms / predicted;
        assert!(
            (0.5..2.0).contains(&ratio),
            "measured {:.1} vs predicted {:.1}",
            report.rms,
            predicted
        );
    }

    #[test]
    fn additions_grow_noise_like_sqrt_k() {
        let (_, m, keys) = setup(1024);
        let msg = vec![0u8; 1024];
        let fresh = she::encrypt(&keys, &msg, &m, 1).unwrap();
        let fresh_noise = measure(keys.secret(), fresh.inner(), &msg, &m).unwrap().rms;
        let mut acc = fresh.clone();
        let k = 15;
        for i in 0..k {
            let c = she::encrypt(&keys, &msg, &m, 100 + i).unwrap();
            acc = acc.add(&c).unwrap();
        }
        let grown = measure(keys.secret(), acc.inner(), &msg, &m).unwrap().rms;
        let expect = ((k + 1) as f64).sqrt();
        let ratio = grown / fresh_noise;
        assert!(
            (expect * 0.6..expect * 1.6).contains(&ratio),
            "noise grew {ratio:.2}× over {k} additions (expected ≈ {expect:.2}×)"
        );
    }

    #[test]
    fn capacity_is_generous_at_paper_parameters() {
        // The HE parameter sets leave room for hundreds of additions.
        for (n, q) in [(4096usize, 786433u64), (32768, 786433)] {
            let cap = addition_capacity(n, q, ETA);
            assert!(cap > 50, "n = {n}: capacity {cap}");
        }
    }

    #[test]
    fn capacity_shrinks_with_degree() {
        // Larger rings accumulate more noise per product.
        let big = addition_capacity(1024, 786433, ETA);
        let small = addition_capacity(32768, 786433, ETA);
        assert!(big > small);
    }

    #[test]
    fn zero_noise_reports_infinite_budget() {
        // Construct an artificial noise-free ciphertext: u = 0, v = Δ·m.
        let (p, m, keys) = setup(256);
        let delta = p.q.div_ceil(2);
        let mut v = vec![0u64; 256];
        v[3] = delta;
        let ct = crate::pke::Ciphertext {
            u: ntt::poly::Polynomial::zero(256, p.q).unwrap(),
            v: ntt::poly::Polynomial::from_coeffs(v, p.q).unwrap(),
        };
        let mut msg = vec![0u8; 256];
        msg[3] = 1;
        let report = measure(keys.secret(), &ct, &msg, &m).unwrap();
        assert_eq!(report.max_abs, 0);
        assert!(report.budget_bits.is_infinite());
    }
}

//! Polynomial samplers: uniform and centered binomial.
//!
//! RLWE schemes draw the public polynomial `a` uniformly from `R_q` and
//! secrets/noise from a narrow centered distribution. Kyber and NewHope
//! both use the centered binomial distribution `CBD_η` (difference of two
//! η-bit Hamming weights), which we reproduce here.

use modmath::params::ParamSet;
use ntt::poly::Polynomial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a uniformly random element of `R_q`.
///
/// # Panics
///
/// Panics if the parameter degree is not a valid polynomial length
/// (cannot happen for validated [`ParamSet`]s).
pub fn uniform(params: &ParamSet, rng: &mut StdRng) -> Polynomial {
    let coeffs: Vec<u64> = (0..params.n).map(|_| rng.gen_range(0..params.q)).collect();
    Polynomial::from_coeffs(coeffs, params.q).expect("validated parameters")
}

/// Samples from the centered binomial distribution `CBD_η` in each
/// coefficient: `Σ_{i<η} (b_i − b'_i)`, values in `[−η, η]`.
///
/// # Panics
///
/// Panics if `eta == 0` or `eta > 16`.
pub fn centered_binomial(params: &ParamSet, eta: u32, rng: &mut StdRng) -> Polynomial {
    assert!(eta > 0 && eta <= 16, "eta out of range");
    let coeffs: Vec<i64> = (0..params.n)
        .map(|_| {
            let a: u32 = rng.gen::<u32>() & ((1 << eta) - 1);
            let b: u32 = rng.gen::<u32>() & ((1 << eta) - 1);
            a.count_ones() as i64 - b.count_ones() as i64
        })
        .collect();
    Polynomial::from_signed_coeffs(&coeffs, params.q).expect("validated parameters")
}

/// A seeded RNG for reproducible protocol runs.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ParamSet {
        ParamSet::for_degree(1024).unwrap()
    }

    #[test]
    fn uniform_covers_range() {
        let p = params();
        let mut rng = seeded_rng(1);
        let poly = uniform(&p, &mut rng);
        assert_eq!(poly.degree_bound(), 1024);
        assert!(poly.coeffs().iter().all(|&c| c < p.q));
        // A uniform sample of 1024 residues spans a wide range whp.
        let max = poly.coeffs().iter().max().unwrap();
        let min = poly.coeffs().iter().min().unwrap();
        assert!(max - min > p.q / 2);
    }

    #[test]
    fn cbd_values_bounded_by_eta() {
        let p = params();
        let mut rng = seeded_rng(2);
        for eta in [1u32, 2, 4, 8] {
            let poly = centered_binomial(&p, eta, &mut rng);
            for c in poly.to_centered() {
                assert!(
                    c.unsigned_abs() <= eta as u64,
                    "eta = {eta}, coefficient {c}"
                );
            }
        }
    }

    #[test]
    fn cbd_is_roughly_centered() {
        let p = params();
        let mut rng = seeded_rng(3);
        let poly = centered_binomial(&p, 2, &mut rng);
        let mean: f64 = poly.to_centered().iter().map(|&c| c as f64).sum::<f64>() / p.n as f64;
        assert!(mean.abs() < 0.2, "sample mean {mean}");
    }

    #[test]
    fn cbd_variance_is_eta_over_two() {
        let p = params();
        let mut rng = seeded_rng(4);
        let eta = 4u32;
        let poly = centered_binomial(&p, eta, &mut rng);
        let var: f64 = poly
            .to_centered()
            .iter()
            .map(|&c| (c * c) as f64)
            .sum::<f64>()
            / p.n as f64;
        let expect = eta as f64 / 2.0;
        assert!(
            (var - expect).abs() < expect * 0.3,
            "variance {var} vs expected {expect}"
        );
    }

    #[test]
    fn same_seed_same_sample() {
        let p = params();
        let a = uniform(&p, &mut seeded_rng(9));
        let b = uniform(&p, &mut seeded_rng(9));
        let c = uniform(&p, &mut seeded_rng(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "eta out of range")]
    fn eta_zero_panics() {
        centered_binomial(&params(), 0, &mut seeded_rng(1));
    }
}

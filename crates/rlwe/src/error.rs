use std::fmt;

/// Errors from the RLWE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RlweError {
    /// The message does not fit the ring (more bits than coefficients).
    MessageTooLong {
        /// Bits supplied.
        bits: usize,
        /// Ring degree (capacity).
        capacity: usize,
    },
    /// Operands belong to different parameter sets.
    ParameterMismatch,
    /// An underlying arithmetic error.
    Math(modmath::Error),
}

impl fmt::Display for RlweError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlweError::MessageTooLong { bits, capacity } => {
                write!(f, "message of {bits} bits exceeds ring capacity {capacity}")
            }
            RlweError::ParameterMismatch => write!(f, "mismatched RLWE parameter sets"),
            RlweError::Math(e) => write!(f, "arithmetic error: {e}"),
        }
    }
}

impl std::error::Error for RlweError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RlweError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<modmath::Error> for RlweError {
    fn from(e: modmath::Error) -> Self {
        RlweError::Math(e)
    }
}

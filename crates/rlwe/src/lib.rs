//! Ring-LWE lattice cryptography on top of the polynomial multiplier.
//!
//! This crate is the application layer the paper motivates: the
//! protocols whose inner loop is the negacyclic polynomial multiplication
//! CryptoPIM accelerates. Every scheme here is generic over
//! [`ntt::negacyclic::PolyMultiplier`], so the same code runs on the
//! software NTT or on the PIM-backed accelerator.
//!
//! * [`sampling`] — uniform and centered-binomial polynomial samplers.
//! * [`pke`] — LPR-style RLWE public-key encryption of bit vectors
//!   (the scheme underlying Kyber/NewHope, with the paper's moduli).
//! * [`keyexchange`] — a NewHope-style key agreement built on the PKE
//!   (KEM-style encapsulation; no reconciliation machinery).
//! * [`she`] — a somewhat-homomorphic (additive + plaintext-product)
//!   encryption demo at homomorphic-encryption degrees (4k – 32k), the
//!   BGV-flavoured workload of the paper's introduction.
//!
//! These schemes are **reference implementations for exercising the
//! accelerator** — they are not constant-time and must not be used to
//! protect real data.
//!
//! # Example
//!
//! ```
//! use modmath::params::ParamSet;
//! use ntt::negacyclic::NttMultiplier;
//! use rlwe::pke::KeyPair;
//!
//! # fn main() -> Result<(), rlwe::RlweError> {
//! let params = ParamSet::for_degree(256)?;
//! let mult = NttMultiplier::new(&params)?;
//! let keys = KeyPair::generate(&params, &mult, 42)?;
//! let message = vec![1u8, 0, 1, 1];
//! let ct = keys.public().encrypt_bits(&message, &mult, 7)?;
//! let pt = keys.secret().decrypt_bits(&ct, &mult)?;
//! assert_eq!(&pt[..4], &message[..]);
//! # Ok(())
//! # }
//! ```

pub mod hash;
pub mod kem;
pub mod keyexchange;
pub mod noise;
pub mod pke;
pub mod sampling;
pub mod serialize;
pub mod she;
pub mod signature;

mod error;

pub use error::RlweError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, RlweError>;

//! LPR-style RLWE public-key encryption (the core of Kyber/NewHope).
//!
//! KeyGen: `s, e ← CBD_η`, `a ← U(R_q)`, `pk = (a, b = a·s + e)`.
//! Enc(m): `r, e₁, e₂ ← CBD_η`,
//! `u = a·r + e₁`, `v = b·r + e₂ + ⌊q/2⌉·m`.
//! Dec: `m̂_i = 1` iff the centered `(v − u·s)_i` is closer to `q/2`
//! than to `0`.
//!
//! Every `·` is a negacyclic polynomial multiplication — the operation
//! CryptoPIM accelerates — performed through the injected
//! [`PolyMultiplier`] backend.

use crate::sampling;
use crate::{Result, RlweError};
use modmath::params::ParamSet;
use ntt::negacyclic::PolyMultiplier;
use ntt::poly::Polynomial;

/// The binomial parameter η used by all schemes in this crate
/// (Kyber-like; plenty of decryption margin at every paper degree).
pub const ETA: u32 = 2;

/// An RLWE public key.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicKey {
    params: ParamSet,
    a: Polynomial,
    b: Polynomial,
}

/// An RLWE secret key.
#[derive(Debug, Clone, PartialEq)]
pub struct SecretKey {
    params: ParamSet,
    s: Polynomial,
}

/// A ciphertext `(u, v)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    /// First component `u = a·r + e₁`.
    pub u: Polynomial,
    /// Second component `v = b·r + e₂ + Δ·m`.
    pub v: Polynomial,
}

/// A generated key pair.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyPair {
    public: PublicKey,
    secret: SecretKey,
}

impl KeyPair {
    /// Generates a key pair using the given multiplier backend.
    ///
    /// # Errors
    ///
    /// Propagates multiplier failures (degree mismatches cannot occur
    /// for a matching backend).
    pub fn generate<M: PolyMultiplier + ?Sized>(
        params: &ParamSet,
        mult: &M,
        seed: u64,
    ) -> Result<Self> {
        let mut rng = sampling::seeded_rng(seed);
        let a = sampling::uniform(params, &mut rng);
        let s = sampling::centered_binomial(params, ETA, &mut rng);
        let e = sampling::centered_binomial(params, ETA, &mut rng);
        let b = mult.multiply(&a, &s)? + e;
        Ok(KeyPair {
            public: PublicKey {
                params: *params,
                a,
                b,
            },
            secret: SecretKey { params: *params, s },
        })
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The secret half.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }
}

/// `⌊q/2⌉` — the plaintext scaling.
fn delta(q: u64) -> u64 {
    q.div_ceil(2)
}

/// Packs bits into a scaled message polynomial.
fn encode_bits(bits: &[u8], params: &ParamSet) -> Result<Polynomial> {
    if bits.len() > params.n {
        return Err(RlweError::MessageTooLong {
            bits: bits.len(),
            capacity: params.n,
        });
    }
    let d = delta(params.q);
    let mut coeffs = vec![0u64; params.n];
    for (i, &bit) in bits.iter().enumerate() {
        coeffs[i] = if bit & 1 == 1 { d } else { 0 };
    }
    Ok(Polynomial::from_coeffs(coeffs, params.q)?)
}

impl PublicKey {
    /// The parameter set.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// The uniform polynomial `a`.
    pub fn a(&self) -> &Polynomial {
        &self.a
    }

    /// The RLWE sample `b = a·s + e`.
    pub fn b(&self) -> &Polynomial {
        &self.b
    }

    /// Encrypts a bit vector (at most `n` bits).
    ///
    /// # Errors
    ///
    /// [`RlweError::MessageTooLong`] when more than `n` bits are given.
    pub fn encrypt_bits<M: PolyMultiplier + ?Sized>(
        &self,
        bits: &[u8],
        mult: &M,
        seed: u64,
    ) -> Result<Ciphertext> {
        let mut rng = sampling::seeded_rng(seed);
        let r = sampling::centered_binomial(&self.params, ETA, &mut rng);
        let e1 = sampling::centered_binomial(&self.params, ETA, &mut rng);
        let e2 = sampling::centered_binomial(&self.params, ETA, &mut rng);
        let m = encode_bits(bits, &self.params)?;
        // `a·r` and `b·r` are independent: route them through the pair
        // hook so batch-forming backends can pack both into one batch.
        let (ar, br) = mult.multiply_pair(&self.a, &r, &self.b, &r)?;
        let u = ar + e1;
        let v = br + e2 + m;
        Ok(Ciphertext { u, v })
    }
}

impl SecretKey {
    /// The parameter set.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Decrypts to the noisy message polynomial `v − u·s` (exposed for
    /// the homomorphic layer, which decodes differently).
    ///
    /// # Errors
    ///
    /// Propagates multiplier failures.
    pub fn decrypt_poly<M: PolyMultiplier + ?Sized>(
        &self,
        ct: &Ciphertext,
        mult: &M,
    ) -> Result<Polynomial> {
        Ok(ct.v.clone() - mult.multiply(&ct.u, &self.s)?)
    }

    /// Decrypts a bit vector of length `n`.
    ///
    /// # Errors
    ///
    /// Propagates multiplier failures.
    pub fn decrypt_bits<M: PolyMultiplier + ?Sized>(
        &self,
        ct: &Ciphertext,
        mult: &M,
    ) -> Result<Vec<u8>> {
        let noisy = self.decrypt_poly(ct, mult)?;
        let q = self.params.q as i64;
        Ok(noisy
            .to_centered()
            .into_iter()
            .map(|c| u8::from(c.abs() > q / 4))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt::negacyclic::NttMultiplier;

    fn setup(n: usize) -> (ParamSet, NttMultiplier) {
        let p = ParamSet::for_degree(n).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        (p, m)
    }

    fn bit_pattern(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .map(|i| ((i as u64 * 2654435761 + seed) >> 7) as u8 & 1)
            .collect()
    }

    #[test]
    fn roundtrip_all_paper_pke_degrees() {
        for n in [256usize, 512, 1024] {
            let (p, m) = setup(n);
            let keys = KeyPair::generate(&p, &m, 100 + n as u64).unwrap();
            let msg = bit_pattern(n, 5);
            let ct = keys.public().encrypt_bits(&msg, &m, 200).unwrap();
            let pt = keys.secret().decrypt_bits(&ct, &m).unwrap();
            assert_eq!(pt, msg, "n = {n}");
        }
    }

    #[test]
    fn roundtrip_he_degree() {
        let (p, m) = setup(4096);
        let keys = KeyPair::generate(&p, &m, 11).unwrap();
        let msg = bit_pattern(4096, 3);
        let ct = keys.public().encrypt_bits(&msg, &m, 12).unwrap();
        assert_eq!(keys.secret().decrypt_bits(&ct, &m).unwrap(), msg);
    }

    #[test]
    fn short_messages_pad_with_zero() {
        let (p, m) = setup(256);
        let keys = KeyPair::generate(&p, &m, 1).unwrap();
        let msg = vec![1u8, 1, 0, 1];
        let ct = keys.public().encrypt_bits(&msg, &m, 2).unwrap();
        let pt = keys.secret().decrypt_bits(&ct, &m).unwrap();
        assert_eq!(&pt[..4], &msg[..]);
        assert!(pt[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn oversized_message_rejected() {
        let (p, m) = setup(256);
        let keys = KeyPair::generate(&p, &m, 1).unwrap();
        let msg = vec![0u8; 257];
        assert!(matches!(
            keys.public().encrypt_bits(&msg, &m, 2),
            Err(RlweError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn wrong_key_garbles_message() {
        let (p, m) = setup(256);
        let alice = KeyPair::generate(&p, &m, 1).unwrap();
        let mallory = KeyPair::generate(&p, &m, 2).unwrap();
        let msg = bit_pattern(256, 1);
        let ct = alice.public().encrypt_bits(&msg, &m, 3).unwrap();
        let pt = mallory.secret().decrypt_bits(&ct, &m).unwrap();
        let wrong = pt.iter().zip(&msg).filter(|(a, b)| a != b).count();
        assert!(wrong > 64, "wrong key must not decrypt ({wrong} flips)");
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (p, m) = setup(256);
        let keys = KeyPair::generate(&p, &m, 1).unwrap();
        let msg = bit_pattern(256, 9);
        let c1 = keys.public().encrypt_bits(&msg, &m, 10).unwrap();
        let c2 = keys.public().encrypt_bits(&msg, &m, 11).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn delta_is_round_half_q() {
        assert_eq!(delta(12289), 6145);
        assert_eq!(delta(7681), 3841);
    }
}

//! Byte serialization for keys, ciphertexts, and signatures.
//!
//! Wire formats are versioned and self-describing enough to reject
//! mismatched parameters on load. Coefficients travel as fixed-width
//! little-endian words sized by the modulus (2 bytes below 2^16,
//! 4 bytes otherwise), so a NewHope ciphertext is ~4 KiB — matching
//! the sizes the protocol literature quotes.

use crate::pke::Ciphertext;
use crate::{Result, RlweError};
use modmath::params::ParamSet;
use ntt::poly::Polynomial;

/// Format version tag leading every serialized object.
const VERSION: u8 = 1;

/// Bytes per coefficient for a modulus.
fn coeff_width(q: u64) -> usize {
    if q < 1 << 16 {
        2
    } else {
        4
    }
}

/// Serializes a polynomial (length + modulus header + coefficients).
pub fn polynomial_to_bytes(p: &Polynomial) -> Vec<u8> {
    let w = coeff_width(p.modulus());
    let mut out = Vec::with_capacity(13 + p.degree_bound() * w);
    out.push(VERSION);
    out.extend_from_slice(&(p.degree_bound() as u32).to_le_bytes());
    out.extend_from_slice(&p.modulus().to_le_bytes());
    for &c in p.coeffs() {
        out.extend_from_slice(&c.to_le_bytes()[..w]);
    }
    out
}

/// Deserializes a polynomial, validating the header.
///
/// # Errors
///
/// [`RlweError::ParameterMismatch`] on truncated input, version skew,
/// or out-of-range coefficients.
pub fn polynomial_from_bytes(bytes: &[u8]) -> Result<Polynomial> {
    if bytes.len() < 13 || bytes[0] != VERSION {
        return Err(RlweError::ParameterMismatch);
    }
    let n = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")) as usize;
    let q = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let w = coeff_width(q);
    if bytes.len() != 13 + n * w || !n.is_power_of_two() || n < 2 {
        return Err(RlweError::ParameterMismatch);
    }
    let mut coeffs = Vec::with_capacity(n);
    for chunk in bytes[13..].chunks_exact(w) {
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(chunk);
        let c = u64::from_le_bytes(buf);
        if c >= q {
            return Err(RlweError::ParameterMismatch);
        }
        coeffs.push(c);
    }
    Ok(Polynomial::from_coeffs(coeffs, q)?)
}

/// Serializes a ciphertext (`u` then `v`).
pub fn ciphertext_to_bytes(ct: &Ciphertext) -> Vec<u8> {
    let u = polynomial_to_bytes(&ct.u);
    let v = polynomial_to_bytes(&ct.v);
    let mut out = Vec::with_capacity(8 + u.len() + v.len());
    out.extend_from_slice(&(u.len() as u32).to_le_bytes());
    out.extend_from_slice(&u);
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    out.extend_from_slice(&v);
    out
}

/// Deserializes a ciphertext.
///
/// # Errors
///
/// [`RlweError::ParameterMismatch`] on malformed input or when the two
/// components disagree in ring parameters.
pub fn ciphertext_from_bytes(bytes: &[u8]) -> Result<Ciphertext> {
    let read_chunk = |bytes: &[u8]| -> Result<(Polynomial, usize)> {
        if bytes.len() < 4 {
            return Err(RlweError::ParameterMismatch);
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        if bytes.len() < 4 + len {
            return Err(RlweError::ParameterMismatch);
        }
        Ok((polynomial_from_bytes(&bytes[4..4 + len])?, 4 + len))
    };
    let (u, consumed) = read_chunk(bytes)?;
    let (v, rest) = read_chunk(&bytes[consumed..])?;
    if consumed + rest != bytes.len()
        || u.degree_bound() != v.degree_bound()
        || u.modulus() != v.modulus()
    {
        return Err(RlweError::ParameterMismatch);
    }
    Ok(Ciphertext { u, v })
}

/// Expected ciphertext wire size for a parameter set, in bytes.
pub fn ciphertext_wire_size(params: &ParamSet) -> usize {
    2 * (13 + params.n * coeff_width(params.q)) + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pke::KeyPair;
    use ntt::negacyclic::NttMultiplier;

    fn ct(n: usize) -> (ParamSet, Ciphertext) {
        let p = ParamSet::for_degree(n).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let keys = KeyPair::generate(&p, &m, 1).unwrap();
        let msg: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        (p, keys.public().encrypt_bits(&msg, &m, 2).unwrap())
    }

    #[test]
    fn polynomial_roundtrip() {
        for (n, q) in [(256usize, 7681u64), (1024, 12289), (2048, 786433)] {
            let p =
                Polynomial::from_coeffs((0..n as u64).map(|i| i * 37 % q).collect(), q).unwrap();
            let bytes = polynomial_to_bytes(&p);
            assert_eq!(polynomial_from_bytes(&bytes).unwrap(), p, "n = {n}");
        }
    }

    #[test]
    fn ciphertext_roundtrip_and_size() {
        for n in [256usize, 1024, 2048] {
            let (p, c) = ct(n);
            let bytes = ciphertext_to_bytes(&c);
            assert_eq!(bytes.len(), ciphertext_wire_size(&p), "n = {n}");
            assert_eq!(ciphertext_from_bytes(&bytes).unwrap(), c, "n = {n}");
        }
    }

    #[test]
    fn newhope_ciphertext_is_about_4k() {
        let p = ParamSet::for_degree(1024).unwrap();
        let size = ciphertext_wire_size(&p);
        assert!((4000..4200).contains(&size), "size = {size}");
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let (_, c) = ct(256);
        let good = ciphertext_to_bytes(&c);
        // Truncation.
        assert!(ciphertext_from_bytes(&good[..good.len() - 1]).is_err());
        assert!(ciphertext_from_bytes(&good[..3]).is_err());
        // Version skew.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(ciphertext_from_bytes(&bad).is_err());
        // Out-of-range coefficient (q = 7681 < 2^13; force 0xFFFF).
        let mut bad = good.clone();
        bad[17] = 0xFF;
        bad[18] = 0xFF;
        assert!(ciphertext_from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(ciphertext_from_bytes(&bad).is_err());
    }

    #[test]
    fn deserialized_ciphertext_still_decrypts() {
        let p = ParamSet::for_degree(512).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let keys = KeyPair::generate(&p, &m, 9).unwrap();
        let msg: Vec<u8> = (0..512).map(|i| (i % 3 == 0) as u8).collect();
        let c = keys.public().encrypt_bits(&msg, &m, 10).unwrap();
        let restored = ciphertext_from_bytes(&ciphertext_to_bytes(&c)).unwrap();
        assert_eq!(keys.secret().decrypt_bits(&restored, &m).unwrap(), msg);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(polynomial_from_bytes(&[]).is_err());
        assert!(ciphertext_from_bytes(&[]).is_err());
    }
}

//! Somewhat-homomorphic encryption at HE degrees (the BGV-flavoured
//! workload of the paper's introduction).
//!
//! Built on the LPR ciphertext structure with plaintext modulus `t = 2`:
//!
//! * **Addition**: `(u₁+u₂, v₁+v₂)` — decrypts to `m₁ ⊕ m₂` as long as
//!   accumulated noise stays below `q/4` (hundreds of additions at the
//!   paper's parameters).
//! * **Plaintext product**: `(u·p, v·p)` for a public binary polynomial
//!   `p` of small Hamming weight — two more negacyclic multiplications,
//!   i.e. exactly the operation the accelerator exists for, at
//!   homomorphic-encryption degrees (4k – 32k, q = 786433).
//!
//! Full BGV (ciphertext-ciphertext products, relinearization, modulus
//! switching) is out of scope: the paper uses HE only as the workload
//! that motivates large-degree multiplication.

use crate::pke::{Ciphertext, KeyPair, SecretKey};
use crate::{Result, RlweError};
use ntt::negacyclic::PolyMultiplier;
use ntt::poly::Polynomial;

/// A homomorphic ciphertext (same structure as a PKE ciphertext, kept
/// distinct so noise-management rules stay visible in types).
#[derive(Debug, Clone, PartialEq)]
pub struct HomCiphertext {
    inner: Ciphertext,
    /// Upper bound on ⊕-depth consumed so far (documentation of noise
    /// budget; enforced loosely).
    pub additions: u32,
}

impl HomCiphertext {
    /// Wraps a freshly encrypted ciphertext.
    pub fn fresh(ct: Ciphertext) -> Self {
        HomCiphertext {
            inner: ct,
            additions: 0,
        }
    }

    /// The raw ciphertext.
    pub fn inner(&self) -> &Ciphertext {
        &self.inner
    }

    /// Homomorphic XOR: adds the ciphertexts coefficient-wise.
    ///
    /// # Errors
    ///
    /// [`RlweError::ParameterMismatch`] when the rings differ.
    pub fn add(&self, other: &HomCiphertext) -> Result<HomCiphertext> {
        if self.inner.u.degree_bound() != other.inner.u.degree_bound()
            || self.inner.u.modulus() != other.inner.u.modulus()
        {
            return Err(RlweError::ParameterMismatch);
        }
        Ok(HomCiphertext {
            inner: Ciphertext {
                u: self.inner.u.clone() + other.inner.u.clone(),
                v: self.inner.v.clone() + other.inner.v.clone(),
            },
            additions: self.additions + other.additions + 1,
        })
    }

    /// Homomorphic product with a public binary polynomial `p` (small
    /// Hamming weight keeps noise growth ≈ weight×): the plaintext
    /// becomes `m·p` in `R_2`.
    ///
    /// # Errors
    ///
    /// [`RlweError::ParameterMismatch`] when the rings differ; multiplier
    /// failures propagate.
    pub fn mul_plaintext<M: PolyMultiplier + ?Sized>(
        &self,
        p: &Polynomial,
        mult: &M,
    ) -> Result<HomCiphertext> {
        if p.degree_bound() != self.inner.u.degree_bound() || p.modulus() != self.inner.u.modulus()
        {
            return Err(RlweError::ParameterMismatch);
        }
        let weight = p.coeffs().iter().filter(|&&c| c != 0).count() as u32;
        // `u·p` and `v·p` are independent: use the pair hook so
        // batch-forming backends pack both into one batch.
        let (up, vp) = mult.multiply_pair(&self.inner.u, p, &self.inner.v, p)?;
        Ok(HomCiphertext {
            inner: Ciphertext { u: up, v: vp },
            additions: self.additions * weight.max(1) + weight,
        })
    }
}

/// Decrypts a homomorphic ciphertext to its bit vector.
///
/// # Errors
///
/// Propagates multiplier failures.
pub fn decrypt<M: PolyMultiplier + ?Sized>(
    sk: &SecretKey,
    ct: &HomCiphertext,
    mult: &M,
) -> Result<Vec<u8>> {
    sk.decrypt_bits(&ct.inner, mult)
}

/// Convenience: encrypts bits as a fresh homomorphic ciphertext.
///
/// # Errors
///
/// Same as [`crate::pke::PublicKey::encrypt_bits`].
pub fn encrypt<M: PolyMultiplier + ?Sized>(
    keys: &KeyPair,
    bits: &[u8],
    mult: &M,
    seed: u64,
) -> Result<HomCiphertext> {
    Ok(HomCiphertext::fresh(
        keys.public().encrypt_bits(bits, mult, seed)?,
    ))
}

/// Reference plaintext semantics of [`HomCiphertext::mul_plaintext`]:
/// binary negacyclic product in `R_2` (negacyclic sign flips vanish
/// mod 2).
#[allow(clippy::needless_range_loop)] // paired i/j indexing mirrors the math
pub fn plaintext_product(m: &[u8], p: &[u8]) -> Vec<u8> {
    let n = m.len();
    let mut out = vec![0u8; n];
    for i in 0..n {
        if m[i] == 0 {
            continue;
        }
        for (j, &pj) in p.iter().enumerate() {
            if pj != 0 {
                let k = (i + j) % n;
                out[k] ^= 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::NttMultiplier;

    fn setup(n: usize) -> (ParamSet, NttMultiplier, KeyPair) {
        let p = ParamSet::for_degree(n).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let k = KeyPair::generate(&p, &m, 5).unwrap();
        (p, m, k)
    }

    fn bits(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed * 2 + 1) >> 3) as u8 & 1)
            .collect()
    }

    #[test]
    fn homomorphic_xor_at_he_degrees() {
        for n in [2048usize, 4096] {
            let (_, m, keys) = setup(n);
            let a = bits(n, 1);
            let b = bits(n, 2);
            let ca = encrypt(&keys, &a, &m, 10).unwrap();
            let cb = encrypt(&keys, &b, &m, 11).unwrap();
            let sum = ca.add(&cb).unwrap();
            let pt = decrypt(keys.secret(), &sum, &m).unwrap();
            let expect: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
            assert_eq!(pt, expect, "n = {n}");
            assert_eq!(sum.additions, 1);
        }
    }

    #[test]
    fn many_additions_still_decrypt() {
        let (_, m, keys) = setup(2048);
        let zero = vec![0u8; 2048];
        let one_bit = {
            let mut v = vec![0u8; 2048];
            v[0] = 1;
            v
        };
        let mut acc = encrypt(&keys, &zero, &m, 1).unwrap();
        for i in 0..50 {
            let c = encrypt(&keys, &one_bit, &m, 100 + i).unwrap();
            acc = acc.add(&c).unwrap();
        }
        let pt = decrypt(keys.secret(), &acc, &m).unwrap();
        // 50 XORs of the same bit = 0.
        assert_eq!(pt[0], 0);
        assert!(pt[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn plaintext_multiplication_matches_reference() {
        let n = 2048;
        let (p, m, keys) = setup(n);
        let msg = bits(n, 3);
        // Sparse public polynomial: x^5 + x^100 + 1.
        let mut pc = vec![0u64; n];
        pc[0] = 1;
        pc[5] = 1;
        pc[100] = 1;
        let ppoly = Polynomial::from_coeffs(pc.clone(), p.q).unwrap();
        let ct = encrypt(&keys, &msg, &m, 4).unwrap();
        let prod = ct.mul_plaintext(&ppoly, &m).unwrap();
        let pt = decrypt(keys.secret(), &prod, &m).unwrap();
        let pbits: Vec<u8> = pc.iter().map(|&c| c as u8).collect();
        assert_eq!(pt, plaintext_product(&msg, &pbits));
    }

    #[test]
    fn mismatched_rings_error() {
        let (_, m2, keys2) = setup(2048);
        let (p4, _, _) = setup(4096);
        let ct = encrypt(&keys2, &bits(2048, 1), &m2, 1).unwrap();
        let other = Polynomial::zero(4096, p4.q).unwrap();
        assert!(matches!(
            ct.mul_plaintext(&other, &m2),
            Err(RlweError::ParameterMismatch)
        ));
    }

    #[test]
    fn plaintext_product_reference_props() {
        // Multiplying by the monomial 1 is the identity.
        let m = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let one = vec![1, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(plaintext_product(&m, &one), m);
        // Commutative.
        let p = vec![0, 1, 0, 0, 1, 0, 0, 0];
        assert_eq!(plaintext_product(&m, &p), plaintext_product(&p, &m));
    }
}

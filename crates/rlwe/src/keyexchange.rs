//! NewHope-style key agreement built on the RLWE PKE.
//!
//! The flow is KEM-style (as in the NIST NewHope submission): Alice
//! publishes an RLWE public key; Bob samples a random bit string,
//! encrypts it to Alice, and both sides use those bits as the shared
//! secret. (The original NewHope's reconciliation machinery is replaced
//! by plain encryption — same multiplications, simpler decoding.)

use crate::pke::{Ciphertext, KeyPair, PublicKey};
use crate::sampling;
use crate::Result;
use modmath::params::ParamSet;
use ntt::negacyclic::PolyMultiplier;
use rand::Rng;

/// Shared-secret length in bits (NewHope targets a 256-bit key).
pub const SHARED_SECRET_BITS: usize = 256;

/// Alice's side: holds the key pair, awaits Bob's encapsulation.
#[derive(Debug, Clone)]
pub struct Initiator {
    keys: KeyPair,
}

/// Bob's output: the message for Alice plus his copy of the secret.
#[derive(Debug, Clone)]
pub struct Encapsulation {
    /// Ciphertext to send to the initiator.
    pub ciphertext: Ciphertext,
    /// Bob's shared secret bits.
    pub shared_secret: Vec<u8>,
}

impl Initiator {
    /// Starts a key agreement: generates Alice's key pair.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new<M: PolyMultiplier + ?Sized>(params: &ParamSet, mult: &M, seed: u64) -> Result<Self> {
        Ok(Initiator {
            keys: KeyPair::generate(params, mult, seed)?,
        })
    }

    /// The public key to send to Bob.
    pub fn public_key(&self) -> &PublicKey {
        self.keys.public()
    }

    /// Completes the agreement from Bob's ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates decryption failures.
    pub fn finish<M: PolyMultiplier + ?Sized>(&self, ct: &Ciphertext, mult: &M) -> Result<Vec<u8>> {
        let bits = self.keys.secret().decrypt_bits(ct, mult)?;
        Ok(bits[..SHARED_SECRET_BITS.min(bits.len())].to_vec())
    }
}

/// Bob's side: encapsulates a fresh shared secret to Alice's key.
///
/// # Errors
///
/// Propagates encryption failures.
///
/// # Panics
///
/// Panics if the ring degree is smaller than [`SHARED_SECRET_BITS`].
pub fn encapsulate<M: PolyMultiplier + ?Sized>(
    pk: &PublicKey,
    mult: &M,
    seed: u64,
) -> Result<Encapsulation> {
    assert!(
        pk.params().n >= SHARED_SECRET_BITS,
        "ring too small for a {SHARED_SECRET_BITS}-bit secret"
    );
    let mut rng = sampling::seeded_rng(seed);
    let secret: Vec<u8> = (0..SHARED_SECRET_BITS)
        .map(|_| rng.gen::<u8>() & 1)
        .collect();
    let ciphertext = pk.encrypt_bits(&secret, mult, rng.gen())?;
    Ok(Encapsulation {
        ciphertext,
        shared_secret: secret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt::negacyclic::NttMultiplier;

    #[test]
    fn agreement_succeeds_on_paper_degrees() {
        for n in [256usize, 512, 1024] {
            let p = ParamSet::for_degree(n).unwrap();
            let m = NttMultiplier::new(&p).unwrap();
            let alice = Initiator::new(&p, &m, 77).unwrap();
            let bob = encapsulate(alice.public_key(), &m, 88).unwrap();
            let alice_secret = alice.finish(&bob.ciphertext, &m).unwrap();
            assert_eq!(alice_secret, bob.shared_secret, "n = {n}");
            assert_eq!(alice_secret.len(), SHARED_SECRET_BITS);
        }
    }

    #[test]
    fn secrets_are_nontrivial() {
        let p = ParamSet::for_degree(512).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let alice = Initiator::new(&p, &m, 1).unwrap();
        let bob = encapsulate(alice.public_key(), &m, 2).unwrap();
        let ones = bob.shared_secret.iter().filter(|&&b| b == 1).count();
        assert!(ones > 64 && ones < 192, "{ones} ones in 256 bits");
    }

    #[test]
    fn fresh_sessions_differ() {
        let p = ParamSet::for_degree(256).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let alice = Initiator::new(&p, &m, 1).unwrap();
        let b1 = encapsulate(alice.public_key(), &m, 10).unwrap();
        let b2 = encapsulate(alice.public_key(), &m, 11).unwrap();
        assert_ne!(b1.shared_secret, b2.shared_secret);
    }

    #[test]
    fn eavesdropper_fails() {
        let p = ParamSet::for_degree(256).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let alice = Initiator::new(&p, &m, 1).unwrap();
        let eve = Initiator::new(&p, &m, 666).unwrap();
        let bob = encapsulate(alice.public_key(), &m, 2).unwrap();
        let eve_guess = eve.finish(&bob.ciphertext, &m).unwrap();
        assert_ne!(eve_guess, bob.shared_secret);
    }
}

//! A Kyber-style key-encapsulation mechanism with the Fujisaki–Okamoto
//! re-encryption check.
//!
//! The passively-secure PKE of [`crate::pke`] is upgraded KEM-style:
//! encapsulation derives all encryption randomness *deterministically*
//! from the message (`coins = H("coins", m ‖ pk-digest)`), so
//! decapsulation can decrypt, re-encrypt with the same coins, and
//! compare ciphertexts. A mismatch (tampered ciphertext) yields an
//! implicit-rejection key derived from a secret rejection seed instead
//! of an error — the standard Kyber behaviour.
//!
//! Like everything in this crate, the construction exists to exercise
//! the accelerated multiplier (five negacyclic multiplications per
//! encapsulate/decapsulate pair) — it is **not** a vetted production
//! KEM.

use crate::hash::{expand, sha256_tagged, Digest};
use crate::pke::{Ciphertext, KeyPair, PublicKey, SecretKey};
use crate::Result;
use modmath::params::ParamSet;
use ntt::negacyclic::PolyMultiplier;

/// Shared-secret length in bytes.
pub const SHARED_SECRET_BYTES: usize = 32;

/// A KEM key pair: the PKE pair plus the implicit-rejection seed.
#[derive(Debug, Clone, PartialEq)]
pub struct KemKeyPair {
    pke: KeyPair,
    rejection_seed: Digest,
}

/// An encapsulated shared secret.
#[derive(Debug, Clone, PartialEq)]
pub struct Encapsulated {
    /// The ciphertext to transmit.
    pub ciphertext: Ciphertext,
    /// The sender's shared secret.
    pub shared_secret: [u8; SHARED_SECRET_BYTES],
}

impl KemKeyPair {
    /// Generates a KEM key pair.
    ///
    /// # Errors
    ///
    /// Propagates PKE key-generation failures.
    pub fn generate<M: PolyMultiplier + ?Sized>(
        params: &ParamSet,
        mult: &M,
        seed: u64,
    ) -> Result<Self> {
        let pke = KeyPair::generate(params, mult, seed)?;
        let rejection_seed = sha256_tagged(b"reject", &seed.to_be_bytes());
        Ok(KemKeyPair {
            pke,
            rejection_seed,
        })
    }

    /// The public key.
    pub fn public(&self) -> &PublicKey {
        self.pke.public()
    }

    /// The secret key (exposed for noise measurements in tests).
    pub fn secret(&self) -> &SecretKey {
        self.pke.secret()
    }

    /// Decapsulates: decrypt, re-encrypt with the recovered coins, and
    /// compare. On mismatch returns the implicit-rejection secret
    /// (indistinguishable from a valid one to an attacker).
    ///
    /// # Errors
    ///
    /// Propagates multiplier failures only; tampering does **not**
    /// error.
    pub fn decapsulate<M: PolyMultiplier + ?Sized>(
        &self,
        ct: &Ciphertext,
        mult: &M,
    ) -> Result<[u8; SHARED_SECRET_BYTES]> {
        let m_bits = self.pke.secret().decrypt_bits(ct, mult)?;
        let m_bytes = bits_to_bytes(&m_bits[..MESSAGE_BITS]);
        let coins = derive_coins(&m_bytes, self.public());
        let reencrypted = encrypt_with_coins(self.public(), &m_bits[..MESSAGE_BITS], coins, mult)?;
        if &reencrypted == ct {
            Ok(derive_secret(&m_bytes, ct))
        } else {
            // Implicit rejection: a pseudorandom key bound to the
            // ciphertext and the secret rejection seed.
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(&self.rejection_seed);
            buf.extend_from_slice(&ciphertext_digest(ct));
            Ok(sha256_tagged(b"implicit", &buf))
        }
    }
}

/// Message length carried by the KEM (256 bits, as in Kyber).
pub const MESSAGE_BITS: usize = 256;

fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1)))
        .collect()
}

fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .flat_map(|&byte| (0..8).map(move |i| (byte >> (7 - i)) & 1))
        .collect()
}

fn public_key_digest(pk: &PublicKey) -> Digest {
    let mut buf = Vec::with_capacity(pk.params().n * 16);
    for &c in pk.a().coeffs() {
        buf.extend_from_slice(&c.to_be_bytes());
    }
    for &c in pk.b().coeffs() {
        buf.extend_from_slice(&c.to_be_bytes());
    }
    sha256_tagged(b"pk", &buf)
}

fn ciphertext_digest(ct: &Ciphertext) -> Digest {
    let mut buf = Vec::with_capacity(ct.u.degree_bound() * 16);
    for &c in ct.u.coeffs() {
        buf.extend_from_slice(&c.to_be_bytes());
    }
    for &c in ct.v.coeffs() {
        buf.extend_from_slice(&c.to_be_bytes());
    }
    sha256_tagged(b"ct", &buf)
}

/// Deterministic encryption coins: `H("coins", m ‖ H(pk))` folded into
/// a `u64` seed for the CBD samplers.
fn derive_coins(m_bytes: &[u8], pk: &PublicKey) -> u64 {
    let mut buf = Vec::with_capacity(m_bytes.len() + 32);
    buf.extend_from_slice(m_bytes);
    buf.extend_from_slice(&public_key_digest(pk));
    let d = sha256_tagged(b"coins", &buf);
    u64::from_be_bytes(d[..8].try_into().expect("8 bytes"))
}

fn derive_secret(m_bytes: &[u8], ct: &Ciphertext) -> [u8; SHARED_SECRET_BYTES] {
    let mut buf = Vec::with_capacity(m_bytes.len() + 32);
    buf.extend_from_slice(m_bytes);
    buf.extend_from_slice(&ciphertext_digest(ct));
    sha256_tagged(b"ss", &buf)
}

fn encrypt_with_coins<M: PolyMultiplier + ?Sized>(
    pk: &PublicKey,
    m_bits: &[u8],
    coins: u64,
    mult: &M,
) -> Result<Ciphertext> {
    pk.encrypt_bits(m_bits, mult, coins)
}

/// Encapsulates a fresh shared secret to `pk`. `entropy` seeds the
/// message choice; everything downstream is deterministic in it.
///
/// # Errors
///
/// Propagates encryption failures.
///
/// # Panics
///
/// Panics if the ring degree is below [`MESSAGE_BITS`].
pub fn encapsulate<M: PolyMultiplier + ?Sized>(
    pk: &PublicKey,
    mult: &M,
    entropy: u64,
) -> Result<Encapsulated> {
    assert!(
        pk.params().n >= MESSAGE_BITS,
        "ring too small for a {MESSAGE_BITS}-bit message"
    );
    // Random message from the entropy (hashed so structure cannot leak).
    let m_seed = sha256_tagged(b"m", &entropy.to_be_bytes());
    let m_bytes = expand(&m_seed, MESSAGE_BITS / 8);
    let m_bits = bytes_to_bits(&m_bytes);
    let coins = derive_coins(&m_bytes, pk);
    let ciphertext = encrypt_with_coins(pk, &m_bits, coins, mult)?;
    let shared_secret = derive_secret(&m_bytes, &ciphertext);
    Ok(Encapsulated {
        ciphertext,
        shared_secret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt::negacyclic::NttMultiplier;
    use ntt::poly::Polynomial;

    fn setup(n: usize) -> (ParamSet, NttMultiplier, KemKeyPair) {
        let p = ParamSet::for_degree(n).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let k = KemKeyPair::generate(&p, &m, 99).unwrap();
        (p, m, k)
    }

    #[test]
    fn encap_decap_roundtrip() {
        for n in [256usize, 512, 1024] {
            let (_, m, keys) = setup(n);
            let enc = encapsulate(keys.public(), &m, 1234).unwrap();
            let ss = keys.decapsulate(&enc.ciphertext, &m).unwrap();
            assert_eq!(ss, enc.shared_secret, "n = {n}");
        }
    }

    #[test]
    fn distinct_entropy_distinct_secrets() {
        let (_, m, keys) = setup(256);
        let e1 = encapsulate(keys.public(), &m, 1).unwrap();
        let e2 = encapsulate(keys.public(), &m, 2).unwrap();
        assert_ne!(e1.shared_secret, e2.shared_secret);
        assert_ne!(e1.ciphertext, e2.ciphertext);
    }

    #[test]
    fn encapsulation_is_deterministic_in_entropy() {
        let (_, m, keys) = setup(256);
        let e1 = encapsulate(keys.public(), &m, 7).unwrap();
        let e2 = encapsulate(keys.public(), &m, 7).unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn tampered_ciphertext_implicitly_rejects() {
        let (p, m, keys) = setup(256);
        let enc = encapsulate(keys.public(), &m, 5).unwrap();
        // Flip one coefficient of v by a large offset.
        let mut v = enc.ciphertext.v.coeffs().to_vec();
        v[0] = (v[0] + p.q / 2) % p.q;
        let tampered = Ciphertext {
            u: enc.ciphertext.u.clone(),
            v: Polynomial::from_coeffs(v, p.q).unwrap(),
        };
        let ss = keys.decapsulate(&tampered, &m).unwrap();
        assert_ne!(ss, enc.shared_secret, "tampering must change the key");
        // And rejection is deterministic.
        let ss2 = keys.decapsulate(&tampered, &m).unwrap();
        assert_eq!(ss, ss2);
    }

    #[test]
    fn wrong_recipient_gets_nothing() {
        let (_, m, alice) = setup(256);
        let p = ParamSet::for_degree(256).unwrap();
        let eve = KemKeyPair::generate(&p, &m, 666).unwrap();
        let enc = encapsulate(alice.public(), &m, 9).unwrap();
        let eve_ss = eve.decapsulate(&enc.ciphertext, &m).unwrap();
        assert_ne!(eve_ss, enc.shared_secret);
    }

    #[test]
    fn bit_byte_helpers_roundtrip() {
        let bytes = vec![0x00u8, 0xFF, 0xA5, 0x3C];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
        assert_eq!(bytes_to_bits(&[0x80])[0], 1);
        assert_eq!(bytes_to_bits(&[0x01])[7], 1);
    }

    #[test]
    fn works_on_pim_backend() {
        use cryptopim::accelerator::CryptoPim;
        let p = ParamSet::for_degree(256).unwrap();
        let pim = CryptoPim::new(&p).unwrap();
        let keys = KemKeyPair::generate(&p, &pim, 3).unwrap();
        let enc = encapsulate(keys.public(), &pim, 4).unwrap();
        let ss = keys.decapsulate(&enc.ciphertext, &pim).unwrap();
        assert_eq!(ss, enc.shared_secret);
    }
}

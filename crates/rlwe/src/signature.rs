//! A GLP-style lattice signature (Fiat–Shamir with aborts).
//!
//! Digital signatures are the other half of the paper's motivation for
//! accelerated polynomial multiplication ("security mechanisms such as
//! digital signature and key agreement", §I). This is a simplified
//! Güneysu–Lyubashevsky–Pöppelmann scheme over the crate's rings:
//!
//! * **Keys**: small `s₁, s₂`; public `t = a·s₁ + s₂` for uniform `a`.
//! * **Sign**: sample masking `y₁, y₂` uniform in `[−B, B]`; challenge
//!   `c = H(a·y₁ + y₂ ‖ msg)` as a sparse ±1 polynomial; candidate
//!   `z₁ = y₁ + s₁·c`, `z₂ = y₂ + s₂·c`; **abort and retry** unless
//!   `‖z‖∞ ≤ B − κ` (the rejection step that makes `z` independent of
//!   the secret).
//! * **Verify**: check the bound and `H(a·z₁ + z₂ − t·c ‖ msg) = c` —
//!   which equals the signer's hash because
//!   `a·z₁ + z₂ − t·c = a·y₁ + y₂` identically.
//!
//! Three negacyclic multiplications per signing attempt and two per
//! verification, all through the pluggable backend. Toy parameters,
//! **not** a production signature scheme.

use crate::hash::{expand, sha256_tagged, Digest};
use crate::sampling;
use crate::{Result, RlweError};
use modmath::params::ParamSet;
use ntt::negacyclic::PolyMultiplier;
use ntt::poly::Polynomial;
use rand::Rng;

/// Number of ±1 coefficients in a challenge polynomial.
pub const CHALLENGE_WEIGHT: usize = 4;

/// Maximum signing attempts before giving up (acceptance ≈ 0.5/attempt,
/// so 64 attempts fail with probability ≈ 2⁻⁶⁴).
pub const MAX_ATTEMPTS: u32 = 64;

/// The masking bound `B` for a modulus: slightly below `q/2` so `y + s·c`
/// cannot wrap.
fn masking_bound(q: u64) -> i64 {
    (q as i64) * 47 / 100
}

/// A signature key pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SigningKey {
    params: ParamSet,
    a: Polynomial,
    s1: Polynomial,
    s2: Polynomial,
    t: Polynomial,
}

/// The public verification key.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyKey {
    params: ParamSet,
    a: Polynomial,
    t: Polynomial,
}

/// A signature: the response pair and the challenge digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    z1: Polynomial,
    z2: Polynomial,
    challenge: Digest,
}

impl Signature {
    /// The first response polynomial `z₁ = y₁ + s₁·c`.
    pub fn z1(&self) -> &Polynomial {
        &self.z1
    }

    /// The second response polynomial `z₂ = y₂ + s₂·c`.
    pub fn z2(&self) -> &Polynomial {
        &self.z2
    }

    /// The Fiat–Shamir challenge digest.
    pub fn challenge(&self) -> &Digest {
        &self.challenge
    }
}

impl SigningKey {
    /// Generates a key pair.
    ///
    /// # Errors
    ///
    /// Propagates multiplier failures.
    pub fn generate<M: PolyMultiplier + ?Sized>(
        params: &ParamSet,
        mult: &M,
        seed: u64,
    ) -> Result<Self> {
        let mut rng = sampling::seeded_rng(seed);
        let a = sampling::uniform(params, &mut rng);
        let s1 = sampling::centered_binomial(params, 1, &mut rng);
        let s2 = sampling::centered_binomial(params, 1, &mut rng);
        let t = mult.multiply(&a, &s1)? + s2.clone();
        Ok(SigningKey {
            params: *params,
            a,
            s1,
            s2,
            t,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// The public half.
    pub fn verify_key(&self) -> VerifyKey {
        VerifyKey {
            params: self.params,
            a: self.a.clone(),
            t: self.t.clone(),
        }
    }

    /// Signs a message. Internally retries on rejection (Fiat–Shamir
    /// with aborts); the returned attempt count is exposed for the
    /// rejection-rate tests.
    ///
    /// # Errors
    ///
    /// [`RlweError::MessageTooLong`] is never returned (any message
    /// hashes); multiplier failures propagate. Exhausting
    /// [`MAX_ATTEMPTS`] returns [`RlweError::ParameterMismatch`]
    /// (practically unreachable).
    pub fn sign<M: PolyMultiplier + ?Sized>(
        &self,
        message: &[u8],
        mult: &M,
        seed: u64,
    ) -> Result<(Signature, u32)> {
        let q = self.params.q;
        let bound = masking_bound(q);
        let accept = bound - CHALLENGE_WEIGHT as i64;
        let mut rng = sampling::seeded_rng(seed ^ 0x5157_u64);

        for attempt in 1..=MAX_ATTEMPTS {
            let y1 = sample_masked(&self.params, bound, &mut rng);
            let y2 = sample_masked(&self.params, bound, &mut rng);
            let w = mult.multiply(&self.a, &y1)? + y2.clone();
            let challenge = challenge_digest(&w, message);
            let c = challenge_poly(&challenge, &self.params)?;
            // `s₁·c` and `s₂·c` are independent: the pair hook lets
            // batch-forming backends pack both into one batch.
            let (s1c, s2c) = mult.multiply_pair(&self.s1, &c, &self.s2, &c)?;
            let z1 = y1 + s1c;
            let z2 = y2 + s2c;
            if infinity_norm(&z1) <= accept && infinity_norm(&z2) <= accept {
                return Ok((Signature { z1, z2, challenge }, attempt));
            }
        }
        Err(RlweError::ParameterMismatch)
    }
}

impl VerifyKey {
    /// The parameter set.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Verifies a signature.
    ///
    /// # Errors
    ///
    /// Multiplier failures propagate; an invalid signature returns
    /// `Ok(false)`.
    pub fn verify<M: PolyMultiplier + ?Sized>(
        &self,
        message: &[u8],
        sig: &Signature,
        mult: &M,
    ) -> Result<bool> {
        let accept = masking_bound(self.params.q) - CHALLENGE_WEIGHT as i64;
        if infinity_norm(&sig.z1) > accept || infinity_norm(&sig.z2) > accept {
            return Ok(false);
        }
        let c = challenge_poly(&sig.challenge, &self.params)?;
        // a·z₁ + z₂ − t·c  =  a·y₁ + y₂; the two products are
        // independent, so the pair hook can batch them together.
        let (az1, tc) = mult.multiply_pair(&self.a, &sig.z1, &self.t, &c)?;
        let w = az1 + sig.z2.clone() - tc;
        Ok(challenge_digest(&w, message) == sig.challenge)
    }
}

/// Uniform polynomial with coefficients in `[−bound, bound]`.
fn sample_masked(params: &ParamSet, bound: i64, rng: &mut rand::rngs::StdRng) -> Polynomial {
    let coeffs: Vec<i64> = (0..params.n)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Polynomial::from_signed_coeffs(&coeffs, params.q).expect("validated parameters")
}

/// Largest absolute centered coefficient.
fn infinity_norm(p: &Polynomial) -> i64 {
    p.to_centered().into_iter().map(i64::abs).max().unwrap_or(0)
}

/// The Fiat–Shamir hash of the commitment and the message.
fn challenge_digest(w: &Polynomial, message: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(w.degree_bound() * 8 + message.len());
    for &c in w.coeffs() {
        buf.extend_from_slice(&c.to_be_bytes());
    }
    buf.extend_from_slice(message);
    sha256_tagged(b"glp-challenge", &buf)
}

/// Expands a challenge digest into the sparse ±1 polynomial: κ distinct
/// positions with signs, sampled from the digest stream.
fn challenge_poly(digest: &Digest, params: &ParamSet) -> Result<Polynomial> {
    let n = params.n;
    let stream = expand(digest, 8 * CHALLENGE_WEIGHT * 4);
    let mut coeffs = vec![0i64; n];
    let mut placed = 0;
    let mut cursor = 0;
    while placed < CHALLENGE_WEIGHT && cursor + 5 <= stream.len() {
        let idx = u32::from_be_bytes(stream[cursor..cursor + 4].try_into().expect("4 bytes"))
            as usize
            % n;
        let sign = stream[cursor + 4] & 1;
        cursor += 5;
        if coeffs[idx] != 0 {
            continue;
        }
        coeffs[idx] = if sign == 1 { 1 } else { -1 };
        placed += 1;
    }
    debug_assert_eq!(placed, CHALLENGE_WEIGHT, "digest stream exhausted");
    Ok(Polynomial::from_signed_coeffs(&coeffs, params.q)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt::negacyclic::NttMultiplier;

    fn setup(n: usize) -> (ParamSet, NttMultiplier, SigningKey) {
        let p = ParamSet::for_degree(n).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let k = SigningKey::generate(&p, &m, 7).unwrap();
        (p, m, k)
    }

    #[test]
    fn sign_verify_roundtrip() {
        for n in [512usize, 1024] {
            let (_, m, sk) = setup(n);
            let vk = sk.verify_key();
            let (sig, attempts) = sk.sign(b"hello lattice", &m, 1).unwrap();
            assert!(attempts >= 1);
            assert!(vk.verify(b"hello lattice", &sig, &m).unwrap(), "n = {n}");
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let (_, m, sk) = setup(512);
        let vk = sk.verify_key();
        let (sig, _) = sk.sign(b"message A", &m, 2).unwrap();
        assert!(!vk.verify(b"message B", &sig, &m).unwrap());
    }

    #[test]
    fn tampered_signature_rejected() {
        let (p, m, sk) = setup(512);
        let vk = sk.verify_key();
        let (mut sig, _) = sk.sign(b"msg", &m, 3).unwrap();
        let mut coeffs = sig.z1.coeffs().to_vec();
        coeffs[0] = (coeffs[0] + 1) % p.q;
        sig.z1 = Polynomial::from_coeffs(coeffs, p.q).unwrap();
        assert!(!vk.verify(b"msg", &sig, &m).unwrap());
    }

    #[test]
    fn wrong_key_rejected() {
        let (p, m, sk) = setup(512);
        let other = SigningKey::generate(&p, &m, 99).unwrap();
        let (sig, _) = sk.sign(b"msg", &m, 4).unwrap();
        assert!(!other.verify_key().verify(b"msg", &sig, &m).unwrap());
    }

    #[test]
    fn rejection_sampling_actually_rejects_sometimes() {
        // Over several signatures, at least one should need > 1 attempt
        // (acceptance ≈ 50 % per attempt at these parameters) and all
        // must stay within MAX_ATTEMPTS.
        let (_, m, sk) = setup(512);
        let mut total_attempts = 0;
        let runs = 12;
        for seed in 0..runs {
            let (_, attempts) = sk.sign(b"rejection test", &m, seed).unwrap();
            total_attempts += attempts;
        }
        assert!(
            total_attempts > runs as u32,
            "expected some rejections; got {total_attempts} attempts for {runs} signatures"
        );
    }

    #[test]
    fn response_is_bounded() {
        let (p, m, sk) = setup(512);
        let (sig, _) = sk.sign(b"bound check", &m, 5).unwrap();
        let accept = masking_bound(p.q) - CHALLENGE_WEIGHT as i64;
        assert!(infinity_norm(&sig.z1) <= accept);
        assert!(infinity_norm(&sig.z2) <= accept);
    }

    #[test]
    fn challenge_poly_is_sparse_and_deterministic() {
        let p = ParamSet::for_degree(512).unwrap();
        let d = sha256_tagged(b"test", b"challenge");
        let c1 = challenge_poly(&d, &p).unwrap();
        let c2 = challenge_poly(&d, &p).unwrap();
        assert_eq!(c1, c2);
        let nonzero: Vec<i64> = c1.to_centered().into_iter().filter(|&c| c != 0).collect();
        assert_eq!(nonzero.len(), CHALLENGE_WEIGHT);
        assert!(nonzero.iter().all(|&c| c == 1 || c == -1));
    }

    #[test]
    fn works_on_pim_backend() {
        use cryptopim::accelerator::CryptoPim;
        let p = ParamSet::for_degree(512).unwrap();
        let pim = CryptoPim::new(&p).unwrap();
        let sk = SigningKey::generate(&p, &pim, 8).unwrap();
        let (sig, _) = sk.sign(b"pim signed", &pim, 9).unwrap();
        assert!(sk.verify_key().verify(b"pim signed", &sig, &pim).unwrap());
    }
}

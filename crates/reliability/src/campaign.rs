//! Seeded fault-injection campaigns over the recover-or-quarantine
//! serving stack.
//!
//! A campaign sweeps a grid of cells — fault kind × injection rate ×
//! polynomial degree — and each cell makes two passes over the same
//! seeded job stream:
//!
//! 1. **Serving pass.** A fresh one-bank [`Service`] with the cell's
//!    [`FaultPlan`] armed serves every job under the *sound*
//!    [`CheckPolicy::Recompute`] referee, and every answer the service
//!    did return is held against the fault-free direct engine path,
//!    bit for bit. The safety claim under test is exactly the serving
//!    layer's contract: a corrupt product never leaves `wait()` — it
//!    is either detected-and-retried, surfaced as
//!    [`service::ServiceError::FaultUnrecovered`], or refused outright
//!    by a quarantined fleet. [`CellResult::wrong`] counts the
//!    violations (served products that differ from the reference) and
//!    must be 0.
//! 2. **Screen pass.** The same plan (fresh write epochs) drives a
//!    direct accelerator under the cheap probabilistic
//!    [`CheckPolicy::Residue`] screen, measuring how many of the
//!    fault-corrupted products the `O(n)`-per-point check actually
//!    flags ([`CellResult::screen_detected`] out of
//!    [`CellResult::screen_corrupted`]). Transform-domain faults
//!    concentrate the error in few NTT bins and routinely escape a
//!    few-point screen — see `cryptopim::check` — which is why the
//!    serving pass uses the referee and the screen's coverage is
//!    *reported*, not assumed.
//!
//! Everything is derived from [`CampaignConfig::seed`]: fault sites,
//! residue points, transient firings, and the job stream. Cells run on
//! a single worker with jobs submitted serially, so the operation
//! epochs the transient/wear-out processes key on replay exactly —
//! rerunning a campaign reproduces every count.

use crate::plan::{FaultKind, FaultPlan};
use cryptopim::accelerator::CryptoPim;
use cryptopim::check::CheckPolicy;
use modmath::crt::RnsBasis;
use modmath::params::ParamSet;
use ntt::negacyclic::PolyMultiplier;
use ntt::rns::RnsMultiplier;
use pim::fault::{layout, splitmix64, Injector};
use service::loadgen::{generate_hot_jobs, generate_jobs};
use service::{
    Backpressure, ProtocolJob, ProtocolKind, Service, ServiceConfig, ServiceError, ServiceStats,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault families a campaign can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Permanent stuck-at-0 cells.
    StuckAt0,
    /// Permanent stuck-at-1 cells.
    StuckAt1,
    /// Transient per-write single-bit flips.
    Transient,
    /// Endurance wear-out: cells stick at 0 halfway through the cell's
    /// job budget.
    WearOut,
}

impl CampaignKind {
    /// Stable short label (JSON field values, report rows).
    pub fn label(&self) -> &'static str {
        match self {
            CampaignKind::StuckAt0 => "stuck0",
            CampaignKind::StuckAt1 => "stuck1",
            CampaignKind::Transient => "transient",
            CampaignKind::WearOut => "wearout",
        }
    }
}

/// Campaign grid and per-cell serving parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every cell derives its own sites/points/jobs seed.
    pub seed: u64,
    /// Degrees swept (paper-table degrees).
    pub degrees: Vec<usize>,
    /// Fault kinds swept.
    pub kinds: Vec<CampaignKind>,
    /// Injection rates swept. For permanent/wear-out kinds this is the
    /// fraction of pipeline words carrying a faulty bit; for transient
    /// it is the per-write flip probability.
    pub rates: Vec<f64>,
    /// Jobs served per cell.
    pub jobs_per_cell: usize,
    /// Residue evaluation points per product in the screen pass (the
    /// serving pass always uses the sound recompute referee).
    pub check_points: u8,
    /// Execution attempts per job before `FaultUnrecovered`.
    pub max_attempts: u32,
    /// Consecutive faulted batches that quarantine the bank.
    pub quarantine_after: u32,
    /// When non-zero, each cell's `a` operands are drawn from a pool of
    /// this many reused keys and the service runs with a hot-operand
    /// transform cache of the same capacity — the campaign then also
    /// proves the *cached* datapath serves zero wrong answers under
    /// injected faults. 0 (the default) leaves the cache off.
    pub hot_keys: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC0FFEE,
            degrees: vec![256, 1024],
            kinds: vec![
                CampaignKind::StuckAt0,
                CampaignKind::StuckAt1,
                CampaignKind::Transient,
                CampaignKind::WearOut,
            ],
            rates: vec![1e-4, 1e-3],
            jobs_per_cell: 24,
            check_points: 3,
            max_attempts: 3,
            quarantine_after: 3,
            hot_keys: 0,
        }
    }
}

/// Outcome of one campaign cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Fault family injected.
    pub kind: CampaignKind,
    /// Polynomial degree served.
    pub degree: usize,
    /// Injection rate (see [`CampaignConfig::rates`]).
    pub rate: f64,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs served with a product (all verified against the reference).
    pub served: usize,
    /// Served products that differed from the fault-free reference —
    /// escaped corruptions. The whole point: this must be 0.
    pub wrong: usize,
    /// Jobs failed as `FaultUnrecovered` after exhausting attempts.
    pub unrecovered: usize,
    /// Jobs refused (`Overloaded`) by a degraded/quarantined fleet.
    pub refused: usize,
    /// Jobs failed with any other error (must be 0).
    pub failed: usize,
    /// Corrupt products flagged by the serving pass's recompute referee.
    pub detected: u64,
    /// Detected-fault retries.
    pub retries: u64,
    /// Jobs that recovered on a retry.
    pub recovered: u64,
    /// Banks quarantined by the cell's end.
    pub quarantined_banks: usize,
    /// Wall-clock of the checked, fault-injected service run, seconds.
    pub service_wall_s: f64,
    /// Wall-clock of the fault-free direct reference run, seconds.
    pub direct_wall_s: f64,
    /// Screen pass: products the fault plan actually corrupted
    /// (referee'd against the fault-free reference).
    pub screen_corrupted: usize,
    /// Screen pass: corrupted products the residue check flagged.
    pub screen_detected: usize,
    /// Hot-operand cache hits during the serving pass (0 when
    /// [`CampaignConfig::hot_keys`] is 0).
    pub hot_hits: u64,
    /// Full scheduler statistics at the cell's shutdown. The headline
    /// counters above are copies of its fields; consumers wanting the
    /// whole picture (occupancy, latency quantiles, batch shapes)
    /// serialize this via [`ServiceStats::to_json`].
    pub stats: ServiceStats,
}

impl CellResult {
    /// Fraction of corrupted products the residue screen caught in this
    /// cell (1.0 when the fault plan corrupted nothing).
    pub fn residue_coverage(&self) -> f64 {
        if self.screen_corrupted == 0 {
            1.0
        } else {
            self.screen_detected as f64 / self.screen_corrupted as f64
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-cell results, grid order (kind, degree, rate).
    pub cells: Vec<CellResult>,
    /// Total serving-pass referee detections.
    pub detected: u64,
    /// Total escaped corruptions (served ≠ reference) — must be 0.
    pub wrong: usize,
    /// Serving-pass detections over result-corrupting activations that
    /// reached a served-or-detected verdict:
    /// `detected / (detected + wrong)`, 1.0 when nothing corrupted.
    /// Under the sound recompute referee this is 1.0 by construction;
    /// `wrong > 0` would mean the referee itself is broken.
    pub detection_coverage: f64,
    /// Screen pass, aggregated: fraction of fault-corrupted products
    /// the probabilistic residue check flagged (1.0 when no product
    /// was corrupted). Expect high values for coefficient-domain fault
    /// mixes and as low as `≈ check_points/n` for single-bin
    /// transform-domain faults.
    pub residue_coverage: f64,
    /// Checked-and-recovered serving wall-clock over the fault-free
    /// direct path: the price of the reliability machinery.
    pub recovery_overhead: f64,
}

impl CampaignReport {
    /// True when no corrupt product escaped and nothing failed for
    /// non-fault reasons.
    pub fn is_sound(&self) -> bool {
        self.wrong == 0 && self.cells.iter().all(|c| c.failed == 0)
    }
}

/// Builds the fault plan for one cell.
fn cell_plan(kind: CampaignKind, rate: f64, n: usize, q: u64, jobs: usize, seed: u64) -> FaultPlan {
    let log_n = n.trailing_zeros();
    let blocks = layout::blocks(log_n);
    let bits = (64 - q.leading_zeros()) as u8;
    let words = f64::from(blocks) * n as f64;
    let sites = ((rate * words).round() as usize).max(1);
    match kind {
        CampaignKind::StuckAt0 => {
            FaultPlan::seeded(seed, FaultKind::StuckAt0, sites, 0, blocks, n as u32, bits)
        }
        CampaignKind::StuckAt1 => {
            FaultPlan::seeded(seed, FaultKind::StuckAt1, sites, 0, blocks, n as u32, bits)
        }
        CampaignKind::WearOut => FaultPlan::seeded(
            seed,
            FaultKind::WearOut {
                write_budget: (jobs as u64 / 2).max(1),
            },
            sites,
            0,
            blocks,
            n as u32,
            bits,
        ),
        CampaignKind::Transient => FaultPlan::new(seed).with_transient(rate, u32::from(bits)),
    }
}

/// Runs one cell: serve the seeded stream through a one-bank
/// referee-checked service under the cell's fault plan, hold every
/// answer against the fault-free direct path, then measure the residue
/// screen's detection rate on the same stream.
fn run_cell(config: &CampaignConfig, kind: CampaignKind, degree: usize, rate: f64) -> CellResult {
    let cell_seed = splitmix64(
        config.seed
            ^ splitmix64(
                (kind.label().len() as u64) << 48
                    | (degree as u64) << 20
                    | rate.to_bits() >> 44
                    | u64::from(kind.label().as_bytes()[0]),
            ),
    );
    let params = ParamSet::for_degree(degree).expect("campaign degree is a paper degree");
    let jobs = if config.hot_keys > 0 {
        generate_hot_jobs(cell_seed, config.jobs_per_cell, &[degree], config.hot_keys)
    } else {
        generate_jobs(cell_seed, config.jobs_per_cell, &[degree])
    };

    // Fault-free reference (and the overhead baseline).
    let reference_acc = CryptoPim::new(&params).expect("paper parameters");
    let t = Instant::now();
    let reference: Vec<_> = jobs
        .iter()
        .map(|(a, b)| reference_acc.multiply(a, b).expect("fault-free multiply"))
        .collect();
    let direct_wall_s = t.elapsed().as_secs_f64();

    let plan = Arc::new(cell_plan(
        kind,
        rate,
        degree,
        params.q,
        config.jobs_per_cell,
        cell_seed,
    ));
    let svc = Service::start(ServiceConfig {
        workers: 1,
        backpressure: Backpressure::Block,
        // Serial submit→wait keeps batches single-job and operation
        // epochs replayable; linger would only add idle waiting.
        linger: Duration::ZERO,
        check: CheckPolicy::Recompute,
        max_attempts: config.max_attempts,
        quarantine_after: config.quarantine_after,
        injector: Some(plan.clone()),
        hot_capacity: config.hot_keys,
        ..ServiceConfig::default()
    });

    let (mut served, mut wrong, mut unrecovered, mut refused, mut failed) = (0, 0, 0, 0, 0);
    let t = Instant::now();
    for (k, (a, b)) in jobs.iter().enumerate() {
        match svc.submit(a.clone(), b.clone()).map(|t| t.wait()) {
            Ok(Ok(done)) => {
                served += 1;
                if done.product != reference[k] {
                    wrong += 1;
                }
            }
            Ok(Err(ServiceError::FaultUnrecovered { .. })) => unrecovered += 1,
            Ok(Err(ServiceError::Overloaded { .. })) | Err(ServiceError::Overloaded { .. }) => {
                refused += 1;
            }
            Ok(Err(_)) | Err(_) => failed += 1,
        }
    }
    let service_wall_s = t.elapsed().as_secs_f64();
    let stats = svc.shutdown();

    // Screen pass: same plan on fresh write epochs, direct datapath,
    // probabilistic residue check — how good is the cheap screen?
    let screen_acc = CryptoPim::new(&params)
        .expect("paper parameters")
        .with_write_path(Some(plan.bank_writes(0)))
        .with_check(CheckPolicy::residue(config.check_points, cell_seed));
    let (mut screen_corrupted, mut screen_detected) = (0, 0);
    for (k, (a, b)) in jobs.iter().enumerate() {
        match screen_acc.multiply_product(a, b) {
            Ok(product) => {
                // The residue identity is exact, so a passed check can
                // still hide a transform-domain escape — the reference
                // is the referee here.
                if product != reference[k] {
                    screen_corrupted += 1;
                }
            }
            Err(pim::PimError::CorruptResult(_)) => {
                screen_corrupted += 1;
                screen_detected += 1;
            }
            Err(e) => panic!("screen pass failed outside the check: {e}"),
        }
    }

    CellResult {
        kind,
        degree,
        rate,
        jobs: config.jobs_per_cell,
        served,
        wrong,
        unrecovered,
        refused,
        failed,
        detected: stats.faults_detected,
        retries: stats.retries,
        recovered: stats.recovered,
        quarantined_banks: stats.quarantined_banks,
        service_wall_s,
        direct_wall_s,
        screen_corrupted,
        screen_detected,
        hot_hits: stats.hot_hits,
        stats,
    }
}

/// Runs the full campaign grid.
pub fn run(config: &CampaignConfig) -> CampaignReport {
    assert!(
        !config.degrees.is_empty() && !config.kinds.is_empty() && !config.rates.is_empty(),
        "campaign grid must be non-empty"
    );
    let mut cells = Vec::new();
    for &kind in &config.kinds {
        for &degree in &config.degrees {
            for &rate in &config.rates {
                cells.push(run_cell(config, kind, degree, rate));
            }
        }
    }
    let detected: u64 = cells.iter().map(|c| c.detected).sum();
    let wrong: usize = cells.iter().map(|c| c.wrong).sum();
    let service_wall: f64 = cells.iter().map(|c| c.service_wall_s).sum();
    let direct_wall: f64 = cells.iter().map(|c| c.direct_wall_s).sum();
    let screen_corrupted: usize = cells.iter().map(|c| c.screen_corrupted).sum();
    let screen_detected: usize = cells.iter().map(|c| c.screen_detected).sum();
    CampaignReport {
        detection_coverage: if detected == 0 && wrong == 0 {
            1.0
        } else {
            detected as f64 / (detected as f64 + wrong as f64)
        },
        residue_coverage: if screen_corrupted == 0 {
            1.0
        } else {
            screen_detected as f64 / screen_corrupted as f64
        },
        recovery_overhead: if direct_wall > 0.0 {
            service_wall / direct_wall
        } else {
            0.0
        },
        cells,
        detected,
        wrong,
    }
}

/// Configuration of one **wide-modulus** campaign cell: seeded
/// transient faults injected while RNS-decomposed jobs stream through
/// the residue-sharded pipeline.
#[derive(Debug, Clone)]
pub struct WideCellConfig {
    /// Master seed for fault sites and the wide job stream.
    pub seed: u64,
    /// Polynomial degree served.
    pub degree: usize,
    /// Residue channels (`k`) of the discovered basis; 2..=4.
    pub channels: usize,
    /// Wide jobs served.
    pub jobs: usize,
    /// Per-write transient flip probability. One engine execution makes
    /// thousands of writes, so useful rates sit well below the narrow
    /// campaign's: around `1e-5` a fault lands every few lane
    /// executions and retries recover; at `1e-3` every attempt is
    /// corrupt and the lane can only exhaust its attempts.
    pub rate: f64,
    /// Execution attempts per residue-lane job before
    /// `FaultUnrecovered`.
    pub max_attempts: u32,
    /// Consecutive faulted batches that quarantine the bank.
    pub quarantine_after: u32,
}

impl Default for WideCellConfig {
    fn default() -> Self {
        WideCellConfig {
            seed: 0xC0FFEE,
            degree: 256,
            channels: 2,
            jobs: 24,
            rate: 1e-5,
            max_attempts: 3,
            quarantine_after: 10,
        }
    }
}

/// Outcome of one wide-modulus cell.
#[derive(Debug, Clone)]
pub struct WideCellResult {
    /// Residue channels of the basis actually used.
    pub channels: usize,
    /// Degree served.
    pub degree: usize,
    /// Injection rate.
    pub rate: f64,
    /// Wide jobs submitted.
    pub jobs: usize,
    /// Wide jobs whose recombined product came back.
    pub served: usize,
    /// Recombined products differing from the fault-free sequential
    /// residue loop — escaped corruptions. Must be 0.
    pub wrong: usize,
    /// Wide jobs failed as a lane-level `FaultUnrecovered`.
    pub unrecovered: usize,
    /// Wide jobs refused by a quarantine-degraded fleet (a lane came
    /// back `Overloaded`).
    pub refused: usize,
    /// Wide jobs failed with any other error (must be 0).
    pub failed: usize,
    /// Served wide jobs where at least one residue lane needed a retry
    /// — the "corrupt lane fails alone" evidence.
    pub lane_retry_jobs: usize,
    /// Referee detections across all residue-lane executions.
    pub detected: u64,
    /// Lane jobs that recovered on a retry.
    pub recovered: u64,
    /// Full scheduler statistics at shutdown.
    pub stats: ServiceStats,
}

/// Runs one wide-modulus cell: RNS-decomposed jobs stream through a
/// one-bank referee-checked service while a seeded transient process
/// flips written bits; every recombined product is held against the
/// fault-free sequential residue loop. A fault lands in exactly one
/// residue lane's execution, is detected by the per-lane recompute
/// referee, retried, and recovered — the sibling lanes never rerun and
/// the recombined answer is never wrong.
pub fn run_wide_cell(config: &WideCellConfig) -> WideCellResult {
    let cell_seed = splitmix64(config.seed ^ 0x57_1D_E0_0D ^ (config.degree as u64) << 24);
    let basis = RnsBasis::discover(config.degree, config.channels, 1 << 20)
        .expect("discoverable wide basis");
    let seq = RnsMultiplier::with_basis(config.degree, basis.clone())
        .expect("basis fits the campaign degree");
    let q_wide = basis.modulus();
    let draw_wide = |salt: u64| -> Vec<u128> {
        (0..config.degree as u64)
            .map(|i| {
                let hi = splitmix64(cell_seed ^ (salt << 40) ^ i) as u128;
                let lo = splitmix64(cell_seed ^ (salt << 40) ^ i ^ 0xABCD) as u128;
                (hi << 64 | lo) % q_wide
            })
            .collect()
    };
    let jobs: Vec<(Vec<u128>, Vec<u128>)> = (0..config.jobs as u64)
        .map(|j| (draw_wide(2 * j + 1), draw_wide(2 * j + 2)))
        .collect();
    let reference: Vec<Vec<u128>> = jobs
        .iter()
        .map(|(a, b)| seq.multiply(a, b).expect("fault-free sequential loop"))
        .collect();

    // Bit flips bounded by the narrowest lane's word width stay
    // meaningful for every residue channel.
    let bits = basis
        .moduli()
        .iter()
        .map(|q| 64 - q.leading_zeros())
        .min()
        .expect("non-empty basis");
    let plan = Arc::new(FaultPlan::new(cell_seed).with_transient(config.rate, bits));
    let svc = Service::start(ServiceConfig {
        workers: 1,
        backpressure: Backpressure::Block,
        linger: Duration::ZERO,
        check: CheckPolicy::Recompute,
        max_attempts: config.max_attempts,
        quarantine_after: config.quarantine_after,
        injector: Some(plan),
        ..ServiceConfig::default()
    });

    let (mut served, mut wrong, mut unrecovered, mut refused, mut failed, mut lane_retry_jobs) =
        (0, 0, 0, 0, 0, 0);
    let classify_lane = |error: ServiceError| match error {
        ServiceError::WideLane { error, .. } => *error,
        other => other,
    };
    for (k, (a, b)) in jobs.iter().enumerate() {
        let outcome = svc
            .submit_wide(a, b, &basis)
            .and_then(|ticket| ticket.wait());
        match outcome {
            Ok(done) => {
                served += 1;
                if done.product != reference[k] {
                    wrong += 1;
                }
                if done.lanes.iter().any(|l| l.attempts > 1) {
                    lane_retry_jobs += 1;
                }
            }
            Err(e) => match classify_lane(e) {
                ServiceError::FaultUnrecovered { .. } => unrecovered += 1,
                ServiceError::Overloaded { .. } => refused += 1,
                _ => failed += 1,
            },
        }
    }
    let stats = svc.shutdown();

    WideCellResult {
        channels: basis.moduli().len(),
        degree: config.degree,
        rate: config.rate,
        jobs: config.jobs,
        served,
        wrong,
        unrecovered,
        refused,
        failed,
        lane_retry_jobs,
        detected: stats.faults_detected,
        recovered: stats.recovered,
        stats,
    }
}

/// Configuration of one **protocol** campaign cell: seeded transient
/// faults injected while full RLWE protocol ops (KEM encaps/decaps,
/// signing, homomorphic multiply) stream through the job-graph layer.
#[derive(Debug, Clone)]
pub struct ProtocolCellConfig {
    /// Master seed for fault sites and the scripted op stream.
    pub seed: u64,
    /// Ring degree of every op.
    pub degree: usize,
    /// Protocol ops served (kinds rotate Encaps → Decaps → Sign →
    /// SHE-Mul).
    pub ops: usize,
    /// Per-write transient flip probability. Protocol ops run several
    /// engine executions each, so useful rates sit around `1e-4`: a
    /// fault lands in some node every few ops and that node's retries
    /// recover it.
    pub rate: f64,
    /// Execution attempts per graph node before `FaultUnrecovered`.
    pub max_attempts: u32,
    /// Consecutive faulted batches that quarantine the bank.
    pub quarantine_after: u32,
}

impl Default for ProtocolCellConfig {
    fn default() -> Self {
        ProtocolCellConfig {
            seed: 0xC0FFEE,
            degree: 256,
            ops: 24,
            rate: 1e-4,
            max_attempts: 6,
            quarantine_after: 10,
        }
    }
}

/// Outcome of one protocol cell.
#[derive(Debug, Clone)]
pub struct ProtocolCellResult {
    /// Degree served.
    pub degree: usize,
    /// Injection rate.
    pub rate: f64,
    /// Protocol ops submitted.
    pub ops: usize,
    /// Ops whose typed output came back.
    pub served: usize,
    /// Served outputs differing from the fault-free direct host path —
    /// escaped corruptions. Must be 0.
    pub wrong: usize,
    /// Ops failed as a node-level `FaultUnrecovered`.
    pub unrecovered: usize,
    /// Ops refused by a quarantine-degraded fleet.
    pub refused: usize,
    /// Ops failed with any other error (must be 0).
    pub failed: usize,
    /// Served ops where some graph node needed a retry — the "a fault
    /// retries one node, not the whole op" evidence.
    pub node_retry_ops: usize,
    /// Referee detections across all node executions.
    pub detected: u64,
    /// Node jobs that recovered on a retry.
    pub recovered: u64,
    /// Full scheduler statistics at shutdown.
    pub stats: ServiceStats,
}

/// Runs one protocol cell: scripted protocol ops stream through a
/// one-bank referee-checked service while a seeded transient process
/// flips written bits; every typed output is held against the
/// fault-free [`ProtocolJob::run_direct`] path. A fault lands in one
/// graph node's execution, is detected by the per-node recompute
/// referee, and retried alone — the op's other nodes never rerun and
/// the op's output is never wrong.
pub fn run_protocol_cell(config: &ProtocolCellConfig) -> ProtocolCellResult {
    let cell_seed = splitmix64(config.seed ^ 0x9A0B_0C0D ^ (config.degree as u64) << 24);
    const KINDS: [ProtocolKind; 4] = [
        ProtocolKind::Encaps,
        ProtocolKind::Decaps,
        ProtocolKind::Sign,
        ProtocolKind::SheMul,
    ];
    let jobs: Vec<ProtocolJob> = (0..config.ops)
        .map(|i| {
            let kind = KINDS[i % KINDS.len()];
            ProtocolJob::scripted(kind, config.degree, splitmix64(cell_seed ^ i as u64))
                .expect("scripted scenario at a paper degree")
        })
        .collect();
    let reference: Vec<_> = jobs
        .iter()
        .map(|j| j.run_direct().expect("fault-free direct path"))
        .collect();

    let q = ParamSet::for_degree(config.degree).expect("paper degree").q;
    let bits = 64 - q.leading_zeros();
    let plan = Arc::new(FaultPlan::new(cell_seed).with_transient(config.rate, bits));
    let svc = Service::start(ServiceConfig {
        workers: 1,
        protocol_workers: 1,
        backpressure: Backpressure::Block,
        linger: Duration::ZERO,
        check: CheckPolicy::Recompute,
        max_attempts: config.max_attempts,
        quarantine_after: config.quarantine_after,
        injector: Some(plan),
        ..ServiceConfig::default()
    });

    let (mut served, mut wrong, mut unrecovered, mut refused, mut failed, mut node_retry_ops) =
        (0, 0, 0, 0, 0, 0);
    let classify_node = |error: ServiceError| match error {
        ServiceError::ProtocolNode { error, .. } => *error,
        other => other,
    };
    for (k, job) in jobs.iter().enumerate() {
        let outcome = svc
            .submit_protocol(job.clone())
            .and_then(|ticket| ticket.wait());
        match outcome {
            Ok(done) => {
                served += 1;
                if done.output != reference[k] {
                    wrong += 1;
                }
                if done.attempts > 1 {
                    node_retry_ops += 1;
                }
            }
            Err(e) => match classify_node(e) {
                ServiceError::FaultUnrecovered { .. } => unrecovered += 1,
                ServiceError::Overloaded { .. } => refused += 1,
                _ => failed += 1,
            },
        }
    }
    let stats = svc.shutdown();

    ProtocolCellResult {
        degree: config.degree,
        rate: config.rate,
        ops: config.ops,
        served,
        wrong,
        unrecovered,
        refused,
        failed,
        node_retry_ops,
        detected: stats.faults_detected,
        recovered: stats.recovered,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig {
            seed: 77,
            degrees: vec![256],
            kinds: vec![CampaignKind::StuckAt1, CampaignKind::Transient],
            rates: vec![1e-3],
            jobs_per_cell: 6,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_sound_and_deterministic() {
        let a = run(&tiny());
        assert!(a.is_sound(), "escaped corruption: {a:?}");
        assert_eq!(a.wrong, 0);
        assert_eq!(a.cells.len(), 2);
        for c in &a.cells {
            assert_eq!(
                c.served + c.unrecovered + c.refused,
                c.jobs,
                "every job accounted for: {c:?}"
            );
        }
        let b = run(&tiny());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(
                (x.served, x.wrong, x.unrecovered, x.refused, x.detected),
                (y.served, y.wrong, y.unrecovered, y.refused, y.detected),
                "replay diverged at {} n={} rate={}",
                x.kind.label(),
                x.degree,
                x.rate
            );
            assert_eq!(
                (x.screen_corrupted, x.screen_detected),
                (y.screen_corrupted, y.screen_detected),
                "screen pass replay diverged at {} n={} rate={}",
                x.kind.label(),
                x.degree,
                x.rate
            );
            assert!(x.screen_detected <= x.screen_corrupted);
        }
    }

    #[test]
    fn hot_cached_cell_stays_sound_and_actually_hits() {
        // The cached datapath under injected faults: reused `a` keys
        // drive the hot-operand cache, and the campaign's own referee
        // still holds every served product bit-exact against the
        // fault-free reference. A stale or corrupt cached transform
        // would show up here as `wrong > 0`.
        let report = run(&CampaignConfig {
            seed: 123,
            kinds: vec![CampaignKind::Transient, CampaignKind::StuckAt1],
            degrees: vec![256],
            rates: vec![1e-3],
            jobs_per_cell: 24,
            hot_keys: 4,
            ..CampaignConfig::default()
        });
        assert!(report.is_sound(), "cached path served wrong: {report:?}");
        assert_eq!(report.wrong, 0);
        let hits: u64 = report.cells.iter().map(|c| c.hot_hits).sum();
        assert!(hits > 0, "hot cache never exercised: {:?}", report.cells);
    }

    #[test]
    fn low_rate_transients_never_serve_wrong() {
        // The regression that motivated the recompute referee: rare
        // transient flips land in single NTT bins (pointwise block,
        // stage outputs) and slip past a few-point residue screen. The
        // serving pass must stay sound regardless of what the screen
        // coverage turns out to be.
        let report = run(&CampaignConfig {
            seed: 99,
            kinds: vec![CampaignKind::Transient],
            degrees: vec![256],
            rates: vec![5e-5],
            jobs_per_cell: 48,
            ..CampaignConfig::default()
        });
        assert!(report.is_sound(), "escaped corruption: {report:?}");
        assert_eq!(report.wrong, 0);
        assert_eq!(report.detection_coverage, 1.0);
        let cell = &report.cells[0];
        assert!(cell.screen_detected <= cell.screen_corrupted);
        assert!(cell.residue_coverage() <= 1.0);
    }

    #[test]
    fn wide_cell_recovers_faulted_lanes_without_wrong_recombination() {
        let config = WideCellConfig {
            seed: 31,
            jobs: 24,
            ..WideCellConfig::default()
        };
        let result = run_wide_cell(&config);
        assert_eq!(result.wrong, 0, "escaped wide corruption: {result:?}");
        assert_eq!(result.failed, 0, "non-fault failure: {result:?}");
        assert!(result.detected >= 1, "seeded faults must trip the referee");
        assert!(result.recovered >= 1, "detected faults must recover");
        assert!(result.lane_retry_jobs >= 1, "a lane retried alone");
        assert_eq!(
            result.served + result.unrecovered + result.refused + result.failed,
            result.jobs
        );
        // Deterministic: the same seed replays the same counts.
        let again = run_wide_cell(&config);
        assert_eq!(
            (
                result.served,
                result.wrong,
                result.detected,
                result.recovered
            ),
            (again.served, again.wrong, again.detected, again.recovered)
        );
    }

    #[test]
    fn clean_wide_cell_detects_nothing() {
        let result = run_wide_cell(&WideCellConfig {
            rate: 0.0,
            jobs: 4,
            ..WideCellConfig::default()
        });
        assert_eq!(result.served, 4);
        assert_eq!(result.wrong, 0);
        assert_eq!(result.detected, 0);
        assert_eq!(result.lane_retry_jobs, 0);
    }

    #[test]
    fn protocol_cell_recovers_node_faults_without_wrong_outputs() {
        let config = ProtocolCellConfig {
            seed: 31,
            ops: 24,
            ..ProtocolCellConfig::default()
        };
        let result = run_protocol_cell(&config);
        assert_eq!(result.wrong, 0, "escaped protocol corruption: {result:?}");
        assert_eq!(result.failed, 0, "non-fault failure: {result:?}");
        assert!(result.detected >= 1, "seeded faults must trip the referee");
        assert!(result.recovered >= 1, "detected faults must recover");
        assert!(
            result.node_retry_ops >= 1,
            "some op's node retried alone: {result:?}"
        );
        assert_eq!(
            result.served + result.unrecovered + result.refused + result.failed,
            result.ops
        );
        // Deterministic: the same seed replays the same counts.
        let again = run_protocol_cell(&config);
        assert_eq!(
            (
                result.served,
                result.wrong,
                result.detected,
                result.recovered,
                result.node_retry_ops
            ),
            (
                again.served,
                again.wrong,
                again.detected,
                again.recovered,
                again.node_retry_ops
            )
        );
    }

    #[test]
    fn clean_protocol_cell_detects_nothing() {
        let result = run_protocol_cell(&ProtocolCellConfig {
            rate: 0.0,
            ops: 4,
            ..ProtocolCellConfig::default()
        });
        assert_eq!(result.served, 4);
        assert_eq!(result.wrong, 0);
        assert_eq!(result.detected, 0);
        assert_eq!(result.node_retry_ops, 0);
    }

    #[test]
    fn clean_campaign_detects_nothing() {
        // Rate 0 still arms the permanent planner with one site via the
        // max(1) floor, so use a transient-only grid at rate 0.
        let report = run(&CampaignConfig {
            kinds: vec![CampaignKind::Transient],
            degrees: vec![256],
            rates: vec![0.0],
            jobs_per_cell: 4,
            ..CampaignConfig::default()
        });
        assert_eq!(report.detected, 0);
        assert_eq!(report.wrong, 0);
        assert_eq!(report.detection_coverage, 1.0);
        assert_eq!(report.residue_coverage, 1.0);
        assert!(report.is_sound());
        assert_eq!(report.cells[0].served, 4);
        assert_eq!(report.cells[0].screen_corrupted, 0);
        assert_eq!(report.cells[0].screen_detected, 0);
    }
}

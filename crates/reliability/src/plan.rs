//! Seeded, deterministic fault plans for the pim block write path.
//!
//! A [`FaultPlan`] is a pure description: which cells misbehave
//! ([`FaultKind::StuckAt0`] / [`FaultKind::StuckAt1`] /
//! [`FaultKind::WearOut`]) plus an optional transient bit-flip process.
//! It implements [`pim::fault::Injector`], so it plugs directly into
//! [`service::ServiceConfig::injector`] or
//! [`cryptopim::accelerator::CryptoPim::with_write_path`].
//!
//! **Determinism.** Everything a plan does is a function of its seed
//! and the write stream — permanent sites are sampled by a splitmix64
//! chain, and a transient flip at operation `e`, block `b`, row `r`
//! fires iff `hash(seed, bank, e, b, r)` clears the rate threshold.
//! There is no RNG state shared across cells: replaying the same
//! operation sequence replays the same faults, which is what lets the
//! fault campaigns (and CI) pin exact detection counts.

use pim::fault::{splitmix64, CellAddr, Injector, WritePath};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a faulty cell misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The bit reads back 0 regardless of what was written.
    StuckAt0,
    /// The bit reads back 1 regardless of what was written.
    StuckAt1,
    /// Endurance exhaustion: the cell behaves until `write_budget`
    /// operations have written it, then sticks at 0 (the common ReRAM
    /// end-of-life failure mode). One accelerator operation writes each
    /// pipeline cell once, so the budget counts operations.
    WearOut {
        /// Operations the cell survives before sticking.
        write_budget: u64,
    },
}

/// One faulty cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The cell.
    pub addr: CellAddr,
    /// Its failure mode.
    pub kind: FaultKind,
}

/// A deterministic fault plan: permanent/wear-out sites plus an
/// optional transient bit-flip process, all derived from a seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<Fault>,
    /// Per-write transient flip probability (0.0 disables).
    transient: f64,
    /// Bit positions transient flips draw from (`[0, transient_bits)`).
    transient_bits: u32,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: Vec::new(),
            transient: 0.0,
            transient_bits: 1,
        }
    }

    /// Adds one faulty cell.
    pub fn with_site(mut self, addr: CellAddr, kind: FaultKind) -> FaultPlan {
        self.sites.push(Fault { addr, kind });
        self
    }

    /// Enables transient single-bit flips: each written word is flipped
    /// in one of the low `bits` bit positions with probability
    /// `per_write` (clamped to `[0, 1]`), decided deterministically
    /// from the plan seed and the write's `(operation, block, row)`.
    pub fn with_transient(mut self, per_write: f64, bits: u32) -> FaultPlan {
        self.transient = per_write.clamp(0.0, 1.0);
        self.transient_bits = bits.clamp(1, 64);
        self
    }

    /// Samples `count` distinct faulty cells of one `kind` on `bank`,
    /// uniformly over the `blocks × rows × bits` cell cuboid, entirely
    /// from `seed` — the same arguments always yield the same sites.
    pub fn seeded(
        seed: u64,
        kind: FaultKind,
        count: usize,
        bank: u32,
        blocks: u32,
        rows: u32,
        bits: u8,
    ) -> FaultPlan {
        assert!(blocks > 0 && rows > 0 && bits > 0, "empty cell cuboid");
        let capacity = blocks as u64 * rows as u64 * u64::from(bits);
        let count = count.min(capacity as usize);
        let mut plan = FaultPlan::new(seed);
        let mut taken: HashSet<(u32, u32, u8)> = HashSet::new();
        let mut x = seed;
        while taken.len() < count {
            x = x.wrapping_add(1);
            let h = splitmix64(seed ^ splitmix64(x));
            let cell = h % capacity;
            let bit = (cell % u64::from(bits)) as u8;
            let row = ((cell / u64::from(bits)) % u64::from(rows)) as u32;
            let block = (cell / (u64::from(bits) * u64::from(rows))) as u32;
            if taken.insert((block, row, bit)) {
                plan.sites.push(Fault {
                    addr: CellAddr {
                        bank,
                        block,
                        row,
                        bit,
                    },
                    kind,
                });
            }
        }
        plan
    }

    /// The plan's permanent/wear-out sites.
    pub fn sites(&self) -> &[Fault] {
        &self.sites
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects anything at all.
    pub fn is_armed(&self) -> bool {
        !self.sites.is_empty() || self.transient > 0.0
    }
}

impl Injector for FaultPlan {
    fn bank_writes(&self, bank: u32) -> Arc<dyn WritePath> {
        let mut sites: HashMap<(u32, u32), Vec<(u8, FaultKind)>> = HashMap::new();
        let mut suspect: Option<u32> = None;
        for f in &self.sites {
            if f.addr.bank == bank {
                sites
                    .entry((f.addr.block, f.addr.row))
                    .or_default()
                    .push((f.addr.bit, f.kind));
                suspect = Some(suspect.map_or(f.addr.block, |b| b.min(f.addr.block)));
            }
        }
        Arc::new(BankWrites {
            bank,
            seed: splitmix64(self.seed ^ u64::from(bank)),
            sites,
            suspect,
            transient: self.transient,
            transient_threshold: threshold(self.transient),
            transient_bits: self.transient_bits,
            epoch: AtomicU64::new(0),
        })
    }
}

/// `p` as a 64-bit fixed-point acceptance threshold (`h < t` fires).
fn threshold(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else {
        (p * (u64::MAX as f64)) as u64
    }
}

/// One bank's view of a [`FaultPlan`]: the write path handed to the
/// engine via [`Injector::bank_writes`].
#[derive(Debug)]
struct BankWrites {
    bank: u32,
    seed: u64,
    sites: HashMap<(u32, u32), Vec<(u8, FaultKind)>>,
    suspect: Option<u32>,
    transient: f64,
    transient_threshold: u64,
    transient_bits: u32,
    epoch: AtomicU64,
}

impl WritePath for BankWrites {
    fn armed(&self) -> bool {
        !self.sites.is_empty() || self.transient > 0.0
    }

    fn begin_op(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    fn store(&self, block: u32, row: u32, value: u64) -> u64 {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut out = value;
        if let Some(bits) = self.sites.get(&(block, row)) {
            for &(bit, kind) in bits {
                let mask = 1u64 << bit;
                match kind {
                    FaultKind::StuckAt0 => out &= !mask,
                    FaultKind::StuckAt1 => out |= mask,
                    FaultKind::WearOut { write_budget } => {
                        if epoch > write_budget {
                            out &= !mask;
                        }
                    }
                }
            }
        }
        if self.transient > 0.0 {
            let h = splitmix64(
                self.seed
                    ^ splitmix64(epoch)
                    ^ splitmix64((u64::from(block) << 32) | u64::from(row)),
            );
            if h < self.transient_threshold {
                out ^= 1u64 << (splitmix64(h) % u64::from(self.transient_bits));
            }
        }
        out
    }

    fn bank(&self) -> u32 {
        self.bank
    }

    fn suspect_block(&self) -> Option<u32> {
        self.suspect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_sampling_is_deterministic_and_distinct() {
        let a = FaultPlan::seeded(9, FaultKind::StuckAt1, 40, 0, 19, 256, 13);
        let b = FaultPlan::seeded(9, FaultKind::StuckAt1, 40, 0, 19, 256, 13);
        assert_eq!(a.sites(), b.sites());
        assert_eq!(a.sites().len(), 40);
        let mut seen = HashSet::new();
        for f in a.sites() {
            assert!(f.addr.block < 19 && f.addr.row < 256 && f.addr.bit < 13);
            assert!(seen.insert(f.addr), "duplicate site {:?}", f.addr);
        }
        let c = FaultPlan::seeded(10, FaultKind::StuckAt1, 40, 0, 19, 256, 13);
        assert_ne!(a.sites(), c.sites(), "different seed, different sites");
    }

    #[test]
    fn stuck_bits_pin_and_wearout_ages() {
        let addr = CellAddr {
            bank: 0,
            block: 2,
            row: 7,
            bit: 3,
        };
        let p0 = FaultPlan::new(1).with_site(addr, FaultKind::StuckAt0);
        let w = p0.bank_writes(0);
        assert!(w.armed());
        assert_eq!(w.store(2, 7, 0b1111), 0b0111);
        assert_eq!(w.store(2, 8, 0b1111), 0b1111, "other rows untouched");
        assert_eq!(w.suspect_block(), Some(2));

        let p1 = FaultPlan::new(1).with_site(addr, FaultKind::StuckAt1);
        assert_eq!(p1.bank_writes(0).store(2, 7, 0), 0b1000);
        assert!(!p1.bank_writes(1).armed(), "other banks clean");

        let pw = FaultPlan::new(1).with_site(addr, FaultKind::WearOut { write_budget: 2 });
        let w = pw.bank_writes(0);
        for expect_ok in [true, true] {
            w.begin_op();
            assert_eq!(w.store(2, 7, 0b1000) == 0b1000, expect_ok);
        }
        w.begin_op();
        assert_eq!(w.store(2, 7, 0b1000), 0, "worn out after the budget");
    }

    #[test]
    fn transient_flips_replay_and_respect_rate() {
        let plan = FaultPlan::new(42).with_transient(0.25, 13);
        assert!(plan.is_armed());
        let (wa, wb) = (plan.bank_writes(0), plan.bank_writes(0));
        let mut flips = 0usize;
        let total = 4000usize;
        for e in 0..10u64 {
            wa.begin_op();
            wb.begin_op();
            for i in 0..(total as u64 / 10) {
                let (block, row) = ((i % 7) as u32, (e * 400 + i) as u32 % 512);
                let a = wa.store(block, row, 0);
                assert_eq!(a, wb.store(block, row, 0), "same seed, same flips");
                if a != 0 {
                    assert_eq!(a.count_ones(), 1, "single-bit flip");
                    assert!(a.trailing_zeros() < 13);
                    flips += 1;
                }
            }
        }
        let rate = flips as f64 / total as f64;
        assert!((0.15..0.35).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn empty_plan_is_disarmed_passthrough() {
        let plan = FaultPlan::new(5);
        assert!(!plan.is_armed());
        let w = plan.bank_writes(0);
        assert!(!w.armed());
        assert_eq!(w.store(0, 0, 12345), 12345);
        assert_eq!(w.suspect_block(), None);
    }
}

//! Reliability layer for the CryptoPIM reproduction: functional fault
//! injection, residue-based result checking, and recover-or-quarantine
//! evaluation campaigns.
//!
//! ReRAM crossbars fail — cells stick, writes flip bits transiently,
//! and endurance runs out — and an accelerator that silently returns a
//! wrong polynomial product is worse than one that is merely slow. The
//! hooks this crate drives live below it: the `pim` substrate defines
//! the [`pim::fault`] write-path traits the engine calls (zero-cost
//! when disarmed), `cryptopim` adds residue spot checks
//! ([`cryptopim::check::CheckPolicy`]) that flag a corrupt product in
//! `O(n)` per point, and the `service` scheduler retries detected
//! faults and quarantines repeatedly-faulting banks. This crate
//! supplies the two missing pieces:
//!
//! * [`plan`] — [`plan::FaultPlan`]: seeded, deterministic fault
//!   descriptions (stuck-at-0/1, transient bit flips, endurance
//!   wear-out) implementing [`pim::fault::Injector`], pluggable into a
//!   single accelerator or a whole service fleet.
//! * [`campaign`] — seeded sweeps over fault kind × rate × degree that
//!   serve real jobs through a fault-injected, checked service and
//!   referee every answer against the fault-free path. The exit
//!   criterion is the stack's safety contract: **no wrong answer ever
//!   leaves `wait()`**.
//!
//! # Example
//!
//! ```
//! use reliability::plan::{FaultKind, FaultPlan};
//! use pim::fault::{CellAddr, Injector};
//!
//! // Bank 0, block 2, row 7, bit 3 reads back 1 no matter what.
//! let plan = FaultPlan::new(42).with_site(
//!     CellAddr { bank: 0, block: 2, row: 7, bit: 3 },
//!     FaultKind::StuckAt1,
//! );
//! let writes = plan.bank_writes(0);
//! assert_eq!(writes.store(2, 7, 0), 0b1000);
//! assert!(!plan.bank_writes(1).armed(), "other banks are clean");
//! ```

pub mod campaign;
pub mod plan;

//! Regenerates the **§IV-A robustness study**: 5000 Monte Carlo samples
//! with 10 % process variation on the RRAM device parameters; reports
//! the noise-margin degradation (paper: max 25.6 % reduction, no
//! functional failures thanks to the high R_off/R_on ratio).
//!
//! ```text
//! cargo run -p cryptopim-bench --bin montecarlo
//! ```

use cryptopim_bench::header;
use pim::device::DeviceParams;
use pim::variation::{run_monte_carlo, MonteCarloConfig};

fn main() {
    let nominal = DeviceParams::nominal();
    header("Device model");
    println!(
        "R_on = {:.0} Ω, R_off = {:.0} Ω (ratio {:.0}), V_th = {} V, cycle = {} ns",
        nominal.r_on,
        nominal.r_off,
        nominal.resistance_ratio(),
        nominal.v_th,
        nominal.switching_delay_ns
    );

    header("Monte Carlo robustness (paper §IV-A: 5000 samples, 10 % variation)");
    let report = run_monte_carlo(&nominal, &MonteCarloConfig::default());
    println!("samples               : {}", report.samples);
    println!("nominal margin        : {:.4}", report.nominal_margin);
    println!("mean margin           : {:.4}", report.mean_margin);
    println!("worst margin          : {:.4}", report.worst_margin);
    println!(
        "max margin reduction  : {:.1} % (paper: 25.6 %)",
        report.max_margin_reduction * 100.0
    );
    println!(
        "functional failures   : {} (paper: operations unaffected)",
        report.failures
    );

    header("Sensitivity sweep: variation vs worst-case margin reduction");
    println!(
        "{:>10} {:>16} {:>10}",
        "variation", "max reduction %", "failures"
    );
    for v in [0.02f64, 0.05, 0.10, 0.15, 0.20, 0.30] {
        let r = run_monte_carlo(
            &nominal,
            &MonteCarloConfig {
                variation: v,
                ..MonteCarloConfig::default()
            },
        );
        println!(
            "{:>9.0}% {:>16.1} {:>10}",
            v * 100.0,
            r.max_margin_reduction * 100.0,
            r.failures
        );
    }

    header("Why the high R_off/R_on matters (ratio ablation at 10 % variation)");
    println!(
        "{:>12} {:>16} {:>10}",
        "Roff/Ron", "max reduction %", "failures"
    );
    for ratio in [10.0f64, 50.0, 100.0, 1000.0] {
        let device = DeviceParams {
            r_off: nominal.r_on * ratio,
            ..nominal
        };
        let r = run_monte_carlo(&device, &MonteCarloConfig::default());
        println!(
            "{:>12.0} {:>16.1} {:>10}",
            ratio,
            r.max_margin_reduction * 100.0,
            r.failures
        );
    }
}

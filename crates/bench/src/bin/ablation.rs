//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **AB1** — fixed-function switch vs full crossbar (§III-C claim:
//!   3 logic switches per row, independent of block size).
//! * **AB2** — CryptoPIM's multiplier vs Haj-Ali et al. \[35\]
//!   (6.5N² − 11.5N + 3 vs 13N² − 14N + 6 cycles).
//! * **AB3** — reduction style ladder (mult-based → shift-add → pruned),
//!   the per-operation view behind Fig. 6.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin ablation
//! ```

use cryptopim::area::AreaEstimate;
use cryptopim::pipeline::{Organization, PipelineModel};
use cryptopim_bench::{header, times};
use modmath::params::ParamSet;
use pim::cost;
use pim::reduce::{Reducer, ReductionStyle};
use pim::switch::{CrossbarSwitch, FixedFunctionSwitch};

fn main() {
    header("AB1 — switch complexity (logic switches per row)");
    println!(
        "{:>8} {:>16} {:>12} {:>10}",
        "rows", "fixed-function", "crossbar", "saving"
    );
    for rows in [64usize, 128, 256, 512] {
        let ff = FixedFunctionSwitch::new(1, rows);
        let xb = CrossbarSwitch::new(rows);
        println!(
            "{:>8} {:>16} {:>12} {:>10}",
            rows,
            ff.switches_per_row(),
            xb.switches_per_row(),
            times(xb.switches_per_row() as f64 / ff.switches_per_row() as f64)
        );
    }
    println!(
        "transfer cost: 3 × bitwidth cycles → 16-bit: {} cycles, 32-bit: {} cycles",
        cost::switch_transfer_cycles(16),
        cost::switch_transfer_cycles(32)
    );

    header("AB2 — multiplier microprogram (cycles per N-bit vector multiply)");
    println!(
        "{:>6} {:>14} {:>18} {:>14} {:>10}",
        "N", "CryptoPIM", "naive (measured)", "Haj-Ali [35]", "speedup"
    );
    for n in [8u32, 16, 24, 32, 48, 64] {
        let fast = cost::mul_cycles(n);
        let slow = cost::mul_cycles_baseline(n);
        // Our reconstructed gate-level microprogram, executed literally
        // (bounded width: the gate engine needs 2N ≤ 64).
        let naive = if n <= 32 {
            format!("{}", pim::alu::gate_multiply_cycles(n as usize))
        } else {
            "-".to_string()
        };
        println!(
            "{:>6} {:>14} {:>18} {:>14} {:>10}",
            n,
            fast,
            naive,
            slow,
            times(slow as f64 / fast as f64)
        );
    }
    println!(
        "the measured column is our bit-level partial-product microprogram run on\n\
         the gate engine; it lands between the two closed forms, bracketing the\n\
         paper's optimization claim."
    );

    header("AB3 — reduction style ladder (cycles, at each modulus's native width)");
    println!(
        "{:<10} {:>18} {:>18} {:>18} | {:>18} {:>18} {:>18}",
        "q",
        "Barrett mult",
        "Barrett shift-add",
        "Barrett pruned",
        "Mont mult",
        "Mont shift-add",
        "Mont pruned"
    );
    for q in [7681u64, 12289, 786433] {
        let mb = Reducer::new(
            q,
            ReductionStyle::MulBased {
                optimized_mul: true,
            },
        )
        .expect("specialized modulus");
        let sa = Reducer::new(q, ReductionStyle::ShiftAdd).expect("specialized modulus");
        let opt = Reducer::new(q, ReductionStyle::CryptoPim).expect("specialized modulus");
        println!(
            "{:<10} {:>18} {:>18} {:>18} | {:>18} {:>18} {:>18}",
            q,
            mb.barrett_cycles(),
            sa.barrett_cycles(),
            opt.barrett_cycles(),
            mb.montgomery_cycles(),
            sa.montgomery_cycles(),
            opt.montgomery_cycles()
        );
    }

    header("AB4 — organization area/throughput Pareto (n = 256)");
    println!(
        "{:<16} {:>10} {:>16} {:>14} {:>18}",
        "organization", "blocks", "cell-equiv", "mult/s", "mult/s per Mcell"
    );
    let params = ParamSet::for_degree(256).expect("paper degree");
    let model = PipelineModel::for_params(&params).expect("paper parameters");
    for org in [
        Organization::AreaEfficient,
        Organization::Naive,
        Organization::CryptoPim,
    ] {
        let est = AreaEstimate::for_config(&model, org).expect("config");
        let thr = model.pipelined(org).throughput;
        println!(
            "{:<16} {:>10} {:>16.2e} {:>14.0} {:>18.0}",
            format!("{org}"),
            est.blocks,
            est.cell_equivalent,
            thr,
            est.throughput_density(thr)
        );
    }
    println!(
        "area-efficient wins density, CryptoPIM wins absolute throughput, and the\n\
         naive organization is dominated on both axes — hence the paper's choice."
    );
}

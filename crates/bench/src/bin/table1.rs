//! Regenerates **Table I**: execution time (cycles) of the in-memory
//! modulo operations, per modulus.
//!
//! Two cost views are printed: the paper's optimized sequences (the
//! authoritative simulator costs) and our trace-derived estimate for an
//! unpruned shift-add sequence (what BP-3 pays), which bounds how much
//! the paper's "only the necessary bit-wise computations" pruning buys.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin table1
//! ```

use cryptopim_bench::{header, versus};
use pim::cost;
use pim::reduce::{Reducer, ReductionStyle};

fn main() {
    header("Table I — modulo operation latency (cycles)");
    println!("{:<10} {:>42} {:>42}", "q", "Barrett", "Montgomery");
    for q in [7681u64, 12289, 786433] {
        let opt = Reducer::new(q, ReductionStyle::CryptoPim).expect("specialized modulus");
        let paper_b = cost::table1_paper_barrett(q).map(|c| c as f64);
        let paper_m = cost::table1_paper_montgomery(q).map(|c| c as f64);
        println!(
            "{:<10} {:>42} {:>42}",
            q,
            versus(opt.barrett_cycles() as f64, paper_b),
            versus(opt.montgomery_cycles() as f64, paper_m),
        );
    }
    println!(
        "\nNote: the paper's Barrett/7681 cell is illegible in the source scan; 276\n\
         is recovered from the Fig. 4a stage-latency decomposition (see DESIGN.md)."
    );

    header("Unpruned shift-add sequences (BP-3's cost), for contrast");
    println!("{:<10} {:>12} {:>12}", "q", "Barrett", "Montgomery");
    for q in [7681u64, 12289, 786433] {
        let sa = Reducer::new(q, ReductionStyle::ShiftAdd).expect("specialized modulus");
        println!(
            "{:<10} {:>12} {:>12}",
            q,
            sa.barrett_cycles(),
            sa.montgomery_cycles()
        );
    }
}

//! Regenerates **Figure 5**: normalized latency and throughput of
//! non-pipelined (NP) vs pipelined (P) CryptoPIM across all paper
//! degrees, plus the energy-overhead discussion.
//!
//! The paper's quoted aggregates: throughput improves 27.8× (n ≤ 1024)
//! and 36.3× (n > 1024); latency overhead 29 % / 59.7 %; pipelining
//! costs ≈ 1.6 % extra energy.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin fig5
//! ```

use cryptopim::accelerator::CryptoPim;
use cryptopim_bench::{header, times};
use modmath::params::ParamSet;

fn main() {
    header("Fig. 5 — latency and throughput, NP vs P (normalized to NP at n = 256)");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>14} {:>14} {:>10} {:>10}",
        "n", "NP lat µs", "P lat µs", "lat ovh", "NP mult/s", "P mult/s", "thr gain", "E ovh %"
    );

    let mut small_gain = Vec::new();
    let mut large_gain = Vec::new();
    let mut small_ovh = Vec::new();
    let mut large_ovh = Vec::new();
    let mut energy_ovh = Vec::new();

    for n in modmath::params::PAPER_DEGREES {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let r = CryptoPim::new(&p)
            .expect("paper parameters")
            .report()
            .expect("report");
        let ovh = r.pipelining_latency_overhead();
        let gain = r.pipelining_throughput_gain();
        let eovh = r.pipelining_energy_overhead();
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>9.1}% {:>14.0} {:>14.0} {:>10} {:>9.2}%",
            n,
            r.non_pipelined.latency_us,
            r.pipelined.latency_us,
            ovh * 100.0,
            r.non_pipelined.throughput,
            r.pipelined.throughput,
            times(gain),
            eovh * 100.0,
        );
        if n <= 1024 {
            small_gain.push(gain);
            small_ovh.push(ovh);
        } else {
            large_gain.push(gain);
            large_ovh.push(ovh);
        }
        energy_ovh.push(eovh);
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    header("Fig. 5 — aggregates vs paper");
    println!(
        "n ≤ 1024 : throughput gain {} (paper 27.8×), latency overhead {:.1}% (paper 29%)",
        times(avg(&small_gain)),
        avg(&small_ovh) * 100.0
    );
    println!(
        "n > 1024 : throughput gain {} (paper 36.3×), latency overhead {:.1}% (paper 59.7%)",
        times(avg(&large_gain)),
        avg(&large_ovh) * 100.0
    );
    println!(
        "energy   : pipelining overhead {:.2}% (paper ≈ 1.6%)",
        avg(&energy_ovh) * 100.0
    );

    header("Fig. 5 — energy scaling with degree (pipelined, µJ)");
    for n in modmath::params::PAPER_DEGREES {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let r = CryptoPim::new(&p)
            .expect("paper parameters")
            .report()
            .expect("report");
        println!("{:<8} {:>12.2}", n, r.pipelined.energy_uj);
    }
}

//! Software-side multiplication-algorithm crossover: schoolbook vs
//! Karatsuba vs NTT, timed natively per degree. Context for the paper's
//! choice of an NTT baseline (§II): once `n` reaches the lattice-crypto
//! range the NTT dominates, which is also why the hardware accelerates
//! it rather than a schoolbook datapath.
//!
//! ```text
//! cargo run --release -p cryptopim-bench --bin algorithms
//! ```

use cryptopim_bench::header;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use ntt::{karatsuba, schoolbook};
use std::time::Instant;

fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
    let mut state = seed;
    let coeffs: Vec<u64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect();
    Polynomial::from_coeffs(coeffs, q).expect("valid degree")
}

fn time_us<F: FnMut()>(mut f: F, iterations: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iterations {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iterations as f64
}

fn main() {
    header("Negacyclic multiplication algorithms — host wall clock (µs)");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10}",
        "n", "schoolbook", "Karatsuba", "NTT", "winner"
    );
    for n in [16usize, 64, 256, 1024, 4096] {
        let p = ParamSet::for_degree(n.max(4)).expect("valid degree");
        let a = rand_poly(n, p.q, 1);
        let b = rand_poly(n, p.q, 2);
        let m = NttMultiplier::for_degree_modulus(n, p.q).expect("NTT-friendly");
        let iters = if n <= 256 { 50 } else { 5 };

        let t_school = if n <= 1024 {
            Some(time_us(
                || {
                    let _ = schoolbook::multiply(&a, &b).expect("schoolbook");
                },
                iters,
            ))
        } else {
            None
        };
        let t_kara = time_us(
            || {
                let _ = karatsuba::multiply(&a, &b).expect("karatsuba");
            },
            iters,
        );
        let t_ntt = time_us(
            || {
                let _ = m.multiply(&a, &b).expect("ntt");
            },
            iters,
        );
        let winner = match t_school {
            Some(s) if s < t_kara && s < t_ntt => "schoolbook",
            _ if t_kara < t_ntt => "Karatsuba",
            _ => "NTT",
        };
        println!(
            "{:<8} {:>14} {:>14.1} {:>14.1} {:>10}",
            n,
            t_school.map_or("-".to_string(), |t| format!("{t:.1}")),
            t_kara,
            t_ntt,
            winner
        );
    }
    println!(
        "\n(all three algorithms produce identical products — each is tested against\n\
         the others in the ntt crate's suite; this table is about speed only)"
    );
}

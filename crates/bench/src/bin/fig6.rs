//! Regenerates **Figure 6**: non-pipelined latency of the PIM baselines
//! BP-1, BP-2, BP-3 and CryptoPIM over all paper degrees, plus the
//! paper's headline ratios (1.9×, 5.5×, 1.2×, total 12.7×).
//!
//! ```text
//! cargo run -p cryptopim-bench --bin fig6
//! ```

use baselines::bp::{fig6_summary, PimDesign};
use cryptopim_bench::{header, times};
use modmath::params::ParamSet;

fn main() {
    header("Fig. 6 — non-pipelined latency (µs) per design");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "n", "BP-1", "BP-2", "BP-3", "CryptoPIM"
    );
    for n in modmath::params::PAPER_DEGREES {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let lat: Vec<f64> = PimDesign::ALL
            .iter()
            .map(|d| d.latency_us(&p).expect("paper parameters"))
            .collect();
        println!(
            "{:<8} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            n, lat[0], lat[1], lat[2], lat[3]
        );
    }

    let s = fig6_summary().expect("paper parameters");
    header("Fig. 6 — geometric-mean ratios vs paper");
    println!("BP-1 / BP-2      : {} (paper 1.9×)", times(s.bp1_over_bp2));
    println!("BP-2 / BP-3      : {} (paper 5.5×)", times(s.bp2_over_bp3));
    println!(
        "BP-3 / CryptoPIM : {} (paper 1.2×)",
        times(s.bp3_over_cryptopim)
    );
    println!(
        "BP-1 / CryptoPIM : {} (paper 12.7×)",
        times(s.bp1_over_cryptopim)
    );
}

//! Pipeline timeline: a text Gantt chart of a burst of multiplications
//! flowing through the CryptoPIM pipeline, from the discrete-event
//! occupancy simulation — fill, steady state, and drain made visible.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin timeline [-- --degree N --jobs K]
//! ```

use cryptopim::pipeline::{Organization, PipelineModel};
use cryptopim::schedule::{burst_size_for_efficiency, simulate_burst};
use cryptopim_bench::header;
use modmath::params::ParamSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = get("--degree", 256);
    let jobs = get("--jobs", 8);

    let params = ParamSet::for_degree(n).expect("valid degree");
    let model = PipelineModel::for_params(&params).expect("paper parameters");
    let org = Organization::CryptoPim;
    let burst = simulate_burst(&model, org, jobs);
    let stage = model.stage_latency(org);
    let depth = model.depth(org);

    header(&format!(
        "Pipeline timeline — n = {n}, {} stages × {} cycles/beat, {} jobs",
        depth, stage, jobs
    ));
    let total_beats = burst.makespan_cycles / stage;
    let scale = (total_beats as usize).div_ceil(100).max(1);
    println!("(one column ≈ {scale} beat(s) of {stage} cycles)");
    for (i, job) in burst.jobs.iter().enumerate() {
        let start = (job.start_cycle / stage) as usize / scale;
        let len = ((job.finish_cycle - job.start_cycle) / stage) as usize / scale;
        println!(
            "job {i:>3} {}{} {:>10.2} µs",
            " ".repeat(start),
            "█".repeat(len.max(1)),
            job.finish_cycle as f64 * pim::CYCLE_TIME_NS / 1000.0
        );
    }

    header("Burst efficiency");
    println!(
        "makespan: {:.2} µs; burst throughput {:.0}/s vs steady-state {:.0}/s",
        burst.makespan_cycles as f64 * pim::CYCLE_TIME_NS / 1000.0,
        burst.burst_throughput(),
        burst.steady_throughput.unwrap_or(f64::NAN),
    );
    for frac in [0.5f64, 0.9, 0.95, 0.99] {
        println!(
            "≥ {:>4.0} % of steady state needs a burst of ≥ {} multiplications",
            frac * 100.0,
            burst_size_for_efficiency(&model, org, frac)
        );
    }
}

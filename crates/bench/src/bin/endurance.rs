//! Endurance study: ReRAM cells wear out after ~10^8–10^12 SET/RESET
//! cycles; a PIM accelerator writes its processing columns on every
//! operation, so wear — not speed — can bound deployment lifetime.
//! This harness drives repeated vector writes through the bit-level
//! crossbar model, reports total and hot-spot wear, and projects the
//! lifetime of a CryptoPIM block at full streaming throughput.
//!
//! ```text
//! cargo run --release -p cryptopim-bench --bin endurance
//! ```

use cryptopim_bench::header;
use pim::crossbar::Crossbar;
use pim::CYCLE_TIME_NS;

/// Conservative ReRAM endurance (switch events per cell).
const ENDURANCE: f64 = 1e8;

fn main() {
    header("Cell wear under repeated vector writes (64×32 crossbar)");
    let mut xb = Crossbar::new(64, 32);
    let field = xb.allocate(16).expect("columns available");
    let rounds = 1000u64;
    for r in 0..rounds {
        // Alternating patterns switch roughly half the cells per write.
        let values: Vec<u64> = (0..64u64).map(|i| (i * 2654435761 + r) & 0xFFFF).collect();
        xb.store_vector(field, &values, None).expect("store");
    }
    let total = xb.total_writes();
    let hot = xb.max_cell_writes();
    let cells = 64 * 16;
    println!("rounds          : {rounds}");
    println!("total switches  : {total}");
    println!("mean per cell   : {:.1}", total as f64 / cells as f64);
    println!("hot-spot cell   : {hot} switches");
    println!(
        "wear imbalance  : {:.2}× (hot spot vs mean)",
        hot as f64 / (total as f64 / cells as f64)
    );

    header("Projected block lifetime at streaming throughput");
    // One pipelined multiplication rewrites each processing column once
    // per stage beat; the hottest cells switch at most once per cycle.
    // Worst case: a cell switching every cycle at 1.1 ns.
    let worst_case_s = ENDURANCE * CYCLE_TIME_NS * 1e-9;
    println!(
        "endurance {ENDURANCE:.0e} switches, 1.1 ns cycle:\n\
         worst-case (cell switches every cycle) : {:.0} s  (~{:.1} min)",
        worst_case_s,
        worst_case_s / 60.0
    );
    // Realistic: random data switches a cell every other op cycle at
    // most, and each stage's processing columns are active only during
    // their block's share of the 1643-cycle beat (~6 %, the adder
    // portion for a given column).
    let duty = 0.5 * 0.06;
    println!(
        "with measured ~50 % switch probability and ~6 % column duty:   {:.1} h",
        worst_case_s / duty / 3600.0
    );
    println!(
        "→ wear-aware column rotation (remapping processing columns across\n\
         the {}-column block) extends this ~{}×, reaching years of service —\n\
         the standard mitigation this model lets one size.",
        pim::BLOCK_DIM,
        pim::BLOCK_DIM / 32
    );
}

//! Architecture-level sweep (§III-D): bank/softbank/superbank
//! configuration, multi-pair packing below 32k, and iterative
//! segmentation above — the chip-level throughput view that extends
//! Table II's per-pipeline numbers.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin sweep
//! ```

use cryptopim::arch::{ArchConfig, MAX_NATIVE_DEGREE};
use cryptopim::pipeline::{Organization, PipelineModel};
use cryptopim_bench::header;
use modmath::params::ParamSet;

fn main() {
    header("Chip configuration per degree (32k-provisioned chip)");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>8} {:>16} {:>18}",
        "n", "banks", "blocks/bank", "parallel", "passes", "pipeline mult/s", "chip mult/s"
    );
    for n in [
        256usize, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    ] {
        // Above the native degree the pipeline runs the 32k parameter
        // set per segment.
        let native = n.min(MAX_NATIVE_DEGREE);
        let p = ParamSet::for_degree(native).expect("valid degree");
        let model = PipelineModel::for_params(&p).expect("paper parameters");
        let arch =
            ArchConfig::for_degree(n, &model, Organization::CryptoPim).expect("valid degree");
        let per_pipeline = model.pipelined(Organization::CryptoPim).throughput;
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>8} {:>16.0} {:>18.0}",
            n,
            arch.banks_per_softbank,
            arch.blocks_per_bank,
            arch.parallel_multiplications,
            arch.passes,
            per_pipeline,
            arch.packed_throughput(per_pipeline),
        );
    }
    println!(
        "\npacking fills idle banks with independent multiplications below 32k;\n\
         above 32k the same hardware iterates over 32k segments (passes > 1)."
    );
}

//! `cli` — command-line driver for the CryptoPIM simulator.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin cli -- simulate --degree 1024
//! cargo run -p cryptopim-bench --bin cli -- simulate --degree 4096 --org naive
//! cargo run -p cryptopim-bench --bin cli -- baseline --design bp2
//! cargo run -p cryptopim-bench --bin cli -- verify --degree 512 --threads 4
//! cargo run -p cryptopim-bench --bin cli -- montecarlo --samples 2000 --variation 15
//! cargo run -p cryptopim-bench --bin cli -- bench --json [--threads N] [--degrees 256,1024] [--out PATH]
//! cargo run -p cryptopim-bench --bin cli -- bench --compare OLD.json NEW.json
//! cargo run -p cryptopim-bench --bin cli -- serve-loadgen --seed 7 --jobs 1920 --clients 4
//! cargo run -p cryptopim-bench --bin cli -- serve --listen 127.0.0.1:7681 --token secret
//! cargo run -p cryptopim-bench --bin cli -- serve-loadgen --tcp --clients 64 --jobs 1024
//! cargo run -p cryptopim-bench --bin cli -- fault-campaign --seed 9 --rates 1e-4,1e-3
//! cargo run -p cryptopim-bench --bin cli -- --json              # shorthand for bench --json
//! ```
//!
//! `bench --json` writes `BENCH_<date>T<hhmmss>.json` (or `--out PATH`)
//! in the working directory: median ns/op for the software NTT and the
//! functional accelerator at the paper degrees, plus the RNG seed, the
//! worker count, and the git commit. The timestamped default keeps
//! same-day snapshots from clobbering each other; committed baselines
//! (like `BENCH_2026-08-06.json`) are written with an explicit `--out`.
//! `bench --compare` diffs two such snapshots and exits non-zero when
//! any common benchmark regressed by more than 10 %; `--filter A,B`
//! restricts the diff to ids containing one of the substrings — the CI
//! `bench-smoke` job gates hard on
//! `poly_multiply,engine_multiply,engine_batch` against the committed
//! baseline.
//!
//! `serve-loadgen` drives the `service` crate's job scheduler with a
//! deterministic seeded workload, bit-verifies every product against
//! the direct engine path, and prints throughput, latency percentiles,
//! and packed-lane occupancy. It exits non-zero when any product
//! mismatches or any admitted job is dropped — the CI `service-smoke`
//! job relies on that.
//!
//! `serve` binds the `net` crate's TCP front end (wire format:
//! DESIGN.md §15) and serves until an operator client sends the
//! `Shutdown` verb. `serve-loadgen --tcp` drives that socket path
//! end-to-end — N client threads over loopback, every product
//! bit-verified against the software NTT — and writes a `BENCH_tcp_*`
//! snapshot with client-observed latency quantiles; `--max-p99-us`
//! turns the p99 into a hard gate. The CI `net-smoke` job relies on
//! both.
//!
//! `fault-campaign` sweeps seeded fault injections (kind × rate ×
//! degree) through the recover-or-quarantine serving stack under the
//! sound recompute referee, verifies every served product bit-exactly
//! against the fault-free path, measures the residue screen's empirical
//! coverage, and exits non-zero if any corrupt product was served — the
//! CI `fault-smoke` job relies on that.

use baselines::bp::PimDesign;
use cryptopim::accelerator::CryptoPim;
use cryptopim::batch;
use cryptopim::check::CheckPolicy;
use cryptopim::phase::PhaseSnapshot;
use cryptopim::pipeline::Organization;
use modmath::crt::RnsBasis;
use modmath::params::ParamSet;
use net::loadgen::{extract_object, TcpLoadConfig};
use net::server::{Server, ServerConfig, TenantConfig};
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use ntt::rns::RnsMultiplier;
use pim::block::MultiplierKind;
use pim::device::DeviceParams;
use pim::fault::splitmix64;
use pim::par::Threads;
use pim::reduce::ReductionStyle;
use pim::variation::{run_monte_carlo, MonteCarloConfig};
use reliability::campaign::{
    self, CampaignConfig, CampaignKind, ProtocolCellConfig, WideCellConfig,
};
use service::loadgen::{self, LoadMode, LoadgenConfig};
use service::protoload::{self, ProtoLoadgenConfig, ProtocolMix};
use service::{Backpressure, ProtocolJob, ProtocolKind, ServiceConfig};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: cli <command> [options]\n\
         \n\
         commands:\n\
         \x20 simulate    --degree N [--org cryptopim|naive|area]   performance report\n\
         \x20 baseline    --design bp1|bp2|bp3|cryptopim [--degree N] Fig.6 design point\n\
         \x20 verify      [--degree N] [--threads N]                  functional check vs software NTT\n\
         \x20 montecarlo  [--samples N] [--variation PCT]             device robustness study\n\
         \x20 bench       [--json] [--seed N] [--threads N] [--degrees A,B] [--out PATH]\n\
         \x20                                                         host-side ns/op benchmarks\n\
         \x20 bench       --compare OLD.json NEW.json [--filter A,B] [--limit PCT]\n\
         \x20                                                         diff two snapshots; exit 1 past the regression limit (default 10 %)\n\
         \x20 rns-bench   [--degree N] [--channels K] [--fleet F]     residue-sharded wide multiply vs the\n\
         \x20             [--jobs N] [--seed N] [--json] [--out PATH] sequential residue loop; bit-verified\n\
         \x20             [--min-speedup X]                           exit 1 below the modeled fleet speedup gate\n\
         \x20 serve-loadgen [--seed N] [--jobs N] [--degrees A,B]     drive the batch-forming job scheduler\n\
         \x20             [--mode closed|open] [--clients C] [--rate R]\n\
         \x20             [--workers S] [--queue-cap N] [--linger-us U]\n\
         \x20             [--backpressure block|reject] [--no-verify]\n\
         \x20             [--check off|residue[:points[:seed]]|recompute]\n\
         \x20             [--hot-keys K]                              reuse K seeded `a` keys + hot cache\n\
         \x20             [--wide R] [--wide-channels K]              blend fraction R of wide RNS-decomposed jobs\n\
         \x20             [--min-speedup X] [--json] [--out PATH]     exit 1 on mismatch/drop\n\
         \x20             [--tcp]                                     drive a real loopback socket instead (see below)\n\
         \x20 serve-loadgen --protocols kem:40,sign:30,she:20,mul:10  drive full protocol ops through the job graph\n\
         \x20             [--ops N] [--key-churn K]                   fresh keys every K ops (0 = reuse all run)\n\
         \x20             [--protocol-workers G] [--hot-capacity N]\n\
         \x20             [--min-occupancy X] [--json] [--out PATH]   exit 1 on mismatch or occupancy below gate\n\
         \x20 serve       --listen ADDR --token T [--quota N]         TCP front end; serves until Shutdown\n\
         \x20             [--op-token T] [--max-conns N] [--max-wait-ms N]\n\
         \x20             [--workers S] [--queue-cap N] [--linger-us U] [--check ...]\n\
         \x20 serve-loadgen --tcp [--clients C] [--jobs N] [--degrees A,B]\n\
         \x20             [--window W] [--quota N] [--wait-timeout-ms N]\n\
         \x20             [--connect ADDR --token T]                  drive an external server (default: in-process)\n\
         \x20             [--max-p99-us X] [--json] [--out PATH]      exit 1 on mismatch or p99 over gate\n\
         \x20 fault-campaign [--seed N] [--degrees A,B] [--rates R1,R2]\n\
         \x20             [--kinds stuck0,stuck1,transient,wearout]\n\
         \x20             [--jobs N] [--points P] [--max-attempts N]\n\
         \x20             [--quarantine-after N] [--hot-keys K]\n\
         \x20             [--wide] [--wide-channels K] [--wide-rate R] add the wide-modulus residue-lane cell\n\
         \x20             [--protocols] [--protocol-rate R]            add the protocol job-graph cell\n\
         \x20             [--json] [--out PATH]\n\
         \x20                                                         seeded fault sweep; exit 1 if a corrupt product was served\n\
         \n\
         --threads N pins the lane fan-out (default: CRYPTOPIM_THREADS\n\
         or the machine's available parallelism; results are identical\n\
         for any worker count)\n"
    );
    std::process::exit(2);
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_degree(args: &[String], default: usize) -> usize {
    match opt(args, "--degree") {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid --degree: {v}");
            std::process::exit(2);
        }),
    }
}

fn parse_threads(args: &[String]) -> Threads {
    match opt(args, "--threads") {
        None => Threads::Auto,
        Some(v) => match v.parse::<usize>() {
            Ok(k) if k >= 1 => Threads::Fixed(k),
            _ => {
                eprintln!("invalid --threads: {v}");
                std::process::exit(2);
            }
        },
    }
}

/// Median ns/op of `f`, sized so each sample runs for at least ~2 ms.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warmup + estimate
    let start = Instant::now();
    f();
    let est = start.elapsed().as_nanos().max(1);
    let iters = (2_000_000 / est).clamp(1, 10_000) as usize;
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no external deps).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Now as `YYYY-MM-DDThhmmss` UTC — default snapshot filenames carry
/// the time of day so same-day runs never clobber each other.
fn utc_timestamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "{}T{:02}{:02}{:02}",
        today_utc(),
        (secs / 3600) % 24,
        (secs / 60) % 60,
        secs % 60
    )
}

/// The commit a snapshot was actually taken at: `git rev-parse --short
/// HEAD` *at run time*, with a `-dirty` suffix when the working tree
/// has uncommitted changes. The suffix matters for provenance — a
/// snapshot recorded before its code lands would otherwise claim the
/// previous commit reproduced numbers it never produced.
fn git_commit() -> String {
    let head = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string());
    let Some(head) = head.filter(|s| !s.is_empty()) else {
        return "unknown".to_string();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{head}-dirty")
    } else {
        head
    }
}

/// Extracts `(id, ns_per_op)` pairs from a `bench --json` snapshot.
///
/// A deliberately minimal scan (the files are machine-written by this
/// binary, and the workspace carries no JSON dependency): each bench
/// entry is the `"id"` string literal followed by the `"ns_per_op"`
/// number.
fn parse_bench_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"id\"") {
        rest = &rest[pos + 4..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        let id = rest[open + 1..open + 1 + close].to_string();
        rest = &rest[open + 1 + close..];
        let Some(key) = rest.find("\"ns_per_op\"") else {
            break;
        };
        let after = rest[key + 11..].trim_start_matches([':', ' ']);
        let end = after
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(after.len());
        if let Ok(ns) = after[..end].parse::<f64>() {
            out.push((id, ns));
        }
        rest = &after[end..];
    }
    out
}

/// Regression threshold for `bench --compare`.
const REGRESSION_LIMIT_PCT: f64 = 10.0;

/// Result of diffing two benchmark snapshots — computed apart from
/// printing/exiting so the edge cases (zero/NaN baselines, one-sided
/// benchmarks) are unit-testable.
#[derive(Debug)]
struct CompareOutcome {
    /// Per-benchmark table rows, in new-snapshot order then gone rows.
    lines: Vec<String>,
    /// Entries skipped because a ns/op value was unusable.
    warnings: Vec<String>,
    /// Benchmarks actually compared (present and valid in both).
    compared: usize,
    /// Worst (most positive) delta among compared benchmarks.
    worst: Option<(f64, String)>,
}

/// Diffs two parsed snapshots. Entries whose ns/op is zero, negative,
/// or non-finite (a hand-edited or truncated snapshot) are skipped
/// with a warning instead of producing an infinite/NaN ratio;
/// benchmarks present in only one snapshot are reported as
/// `new` / `gone` rather than silently ignored.
fn compare_snapshots(old: &[(String, f64)], new: &[(String, f64)]) -> CompareOutcome {
    let usable = |ns: f64| ns.is_finite() && ns > 0.0;
    let mut out = CompareOutcome {
        lines: Vec::new(),
        warnings: Vec::new(),
        compared: 0,
        worst: None,
    };
    for (id, new_ns) in new {
        let Some((_, old_ns)) = old.iter().find(|(o, _)| o == id) else {
            out.lines
                .push(format!("{id:<24} {:>12} {new_ns:>12.0} {:>9}", "-", "new"));
            continue;
        };
        if !usable(*old_ns) || !usable(*new_ns) {
            out.warnings.push(format!(
                "skipping {id}: unusable ns/op (old {old_ns}, new {new_ns})"
            ));
            continue;
        }
        let delta_pct = (new_ns - old_ns) / old_ns * 100.0;
        out.lines.push(format!(
            "{id:<24} {old_ns:>12.0} {new_ns:>12.0} {delta_pct:>+8.1}%"
        ));
        out.compared += 1;
        if out.worst.as_ref().is_none_or(|(w, _)| delta_pct > *w) {
            out.worst = Some((delta_pct, id.clone()));
        }
    }
    for (id, old_ns) in old {
        if !new.iter().any(|(n, _)| n == id) {
            out.lines
                .push(format!("{id:<24} {old_ns:>12.0} {:>12} {:>9}", "-", "gone"));
        }
    }
    out
}

/// `bench --compare OLD NEW [--filter A,B]`: prints per-benchmark
/// deltas over the common ids and exits 1 when any regressed by more
/// than `limit` percent (default [`REGRESSION_LIMIT_PCT`]). With
/// `--filter`, only ids containing one of the comma-separated
/// substrings participate; `--limit PCT` widens the gate where the
/// measuring host is too jittery for the 10 % default (the 1-core CI
/// container swings ±30-40 % run to run even on end-to-end series).
fn run_compare(old_path: &str, new_path: &str, filter: Option<&str>, limit: f64) {
    let load = |path: &str| -> Vec<(String, f64)> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let benches = parse_bench_json(&text);
        if benches.is_empty() {
            eprintln!("{path}: no benchmark entries found");
            std::process::exit(2);
        }
        benches
    };
    let mut old = load(old_path);
    let mut new = load(new_path);
    if let Some(filter) = filter {
        let needles: Vec<&str> = filter.split(',').map(str::trim).collect();
        let keep = |id: &str| needles.iter().any(|needle| id.contains(needle));
        old.retain(|(id, _)| keep(id));
        new.retain(|(id, _)| keep(id));
        if old.is_empty() && new.is_empty() {
            eprintln!("--filter {filter} matches no benchmarks in either snapshot");
            std::process::exit(2);
        }
    }

    let outcome = compare_snapshots(&old, &new);
    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "benchmark", "old ns/op", "new ns/op", "delta"
    );
    for line in &outcome.lines {
        println!("{line}");
    }
    for warning in &outcome.warnings {
        eprintln!("warning: {warning}");
    }
    if outcome.compared == 0 {
        eprintln!("no comparable benchmarks between {old_path} and {new_path}");
        std::process::exit(2);
    }
    match outcome.worst {
        Some((pct, id)) if pct > limit => {
            eprintln!("REGRESSION: {id} slowed by {pct:.1}% (limit {limit:.0}%)");
            std::process::exit(1);
        }
        Some((pct, id)) => {
            println!("worst delta: {id} at {pct:+.1}% (limit {limit:.0}%) — OK");
        }
        None => unreachable!("compared > 0 implies a worst delta"),
    }
}

fn parse_degrees(args: &[String]) -> Vec<usize> {
    match opt(args, "--degrees") {
        None => vec![256, 1024, 4096],
        Some(v) => {
            let degrees: Vec<usize> = v
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| {
                        eprintln!("invalid --degrees entry: {s}");
                        std::process::exit(2);
                    })
                })
                .collect();
            if degrees.is_empty() {
                eprintln!("--degrees needs at least one degree");
                std::process::exit(2);
            }
            degrees
        }
    }
}

fn run_bench(args: &[String]) {
    if args.iter().any(|a| a == "--compare") {
        let pos = args.iter().position(|a| a == "--compare").expect("present");
        let (Some(old_path), Some(new_path)) = (args.get(pos + 1), args.get(pos + 2)) else {
            eprintln!("--compare needs two snapshot paths");
            std::process::exit(2);
        };
        let limit = opt(args, "--limit")
            .map(|v| {
                v.parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("--limit wants a percentage, got {v}");
                    std::process::exit(2);
                })
            })
            .unwrap_or(REGRESSION_LIMIT_PCT);
        if !limit.is_finite() || limit <= 0.0 {
            eprintln!("--limit must be a positive percentage, got {limit}");
            std::process::exit(2);
        }
        run_compare(old_path, new_path, opt(args, "--filter").as_deref(), limit);
        return;
    }
    let threads = parse_threads(args);
    let workers = threads.resolve();
    let json = args.iter().any(|a| a == "--json");
    let seed: u64 = match opt(args, "--seed") {
        None => 7,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid --seed: {v}");
            std::process::exit(2);
        }),
    };
    let mut results: Vec<(String, f64)> = Vec::new();

    for n in parse_degrees(args) {
        // Degrees past the paper table (65536) fall back to the largest
        // paper modulus, 786433 = 3·2^18 + 1, whose 2^19-smooth order
        // supports negacyclic transforms up to n = 2^18.
        let params = ParamSet::for_degree(n)
            .or_else(|_| ParamSet::custom(n, 786433, 32))
            .expect("bench degree");
        let q = params.q;
        let sw = NttMultiplier::new(&params).expect("bench parameters");
        let operand = |salt: u64| {
            Polynomial::from_coeffs(
                (0..n as u64)
                    .map(|i| splitmix64(seed ^ (salt << 32) ^ i) % q)
                    .collect(),
                q,
            )
            .expect("valid degree")
        };
        let (a, b) = (operand(1), operand(2));

        results.push((
            format!("ntt_forward/{n}"),
            time_ns(|| {
                std::hint::black_box(sw.forward(std::hint::black_box(&a)).unwrap());
            }),
        ));
        // Inverse kernel on a warm in-place buffer (batch API, B = 1):
        // canonical output is valid lazy input, so repeated calls keep
        // transforming in-range data with no per-iteration copy.
        let mut inv_buf = a.coeffs().to_vec();
        sw.forward_batch(&mut inv_buf).expect("degree-n buffer");
        results.push((
            format!("ntt_inverse/{n}"),
            time_ns(|| {
                sw.inverse_batch(std::hint::black_box(&mut inv_buf))
                    .expect("degree-n buffer");
            }),
        ));
        results.push((
            format!("poly_multiply/{n}"),
            time_ns(|| {
                std::hint::black_box(sw.multiply(&a, &b).unwrap());
            }),
        ));
        // Batch-fused transform path: B jobs share one twiddle-table
        // walk. ns/op is normalized PER JOB so the series reads directly
        // against poly_multiply/{n}.
        const BATCH: usize = 4;
        let mut ba: Vec<u64> = (0..BATCH).flat_map(|_| a.coeffs().to_vec()).collect();
        let mut bb: Vec<u64> = (0..BATCH).flat_map(|_| b.coeffs().to_vec()).collect();
        let mut bout = vec![0u64; BATCH * n];
        results.push((
            format!("ntt_batch/{BATCH}x{n}"),
            time_ns(|| {
                sw.multiply_batch_into(
                    std::hint::black_box(&mut ba),
                    std::hint::black_box(&mut bb),
                    std::hint::black_box(&mut bout),
                )
                .unwrap();
            }) / BATCH as f64,
        ));

        // Residue-sharded wide multiply: one k-channel RNS job under
        // the product of discovered NTT-friendly primes. `rns_multiply`
        // is the batch-fused sharded path (all jobs' residues of one
        // channel share a single transform walk); `rns_seq` is the
        // sequential residue loop (split → per-lane multiply → combine,
        // one lane after another). Both are per-job ns, so the pair
        // reads directly against each other and `poly_multiply/{n}`.
        const RNS_CHANNELS: usize = 2;
        if let Ok(rns) = RnsMultiplier::with_discovered_basis(n, RNS_CHANNELS, 1 << 20) {
            let q_wide = rns.modulus();
            let wide_operand = |salt: u64| -> Vec<u128> {
                (0..n as u64)
                    .map(|i| {
                        let hi = splitmix64(seed ^ (salt << 32) ^ i) as u128;
                        let lo = splitmix64(seed ^ (salt << 32) ^ i ^ 0x5EED) as u128;
                        (hi << 64 | lo) % q_wide
                    })
                    .collect()
            };
            let wide_jobs: Vec<(Vec<u128>, Vec<u128>)> = (0..BATCH as u64)
                .map(|i| (wide_operand(30 + i), wide_operand(40 + i)))
                .collect();
            results.push((
                format!("rns_multiply/{n}x{RNS_CHANNELS}"),
                time_ns(|| {
                    std::hint::black_box(
                        rns.multiply_batch(std::hint::black_box(&wide_jobs))
                            .unwrap(),
                    );
                }) / BATCH as f64,
            ));
            results.push((
                format!("rns_seq/{n}x{RNS_CHANNELS}"),
                time_ns(|| {
                    for (wa, wb) in &wide_jobs {
                        std::hint::black_box(rns.multiply(wa, wb).unwrap());
                    }
                }) / BATCH as f64,
            ));
        }

        // Full protocol ops on the host datapath: one KEM encapsulation
        // (five negacyclic multiplies behind re-encryption-ready
        // coins) and one lattice signature (rejection-sampled, so the
        // attempt count — fixed by the seed — is part of the cost).
        // Per-op ns; these are the series the protocol job-graph layer
        // accelerates, so a regression here moves every served op.
        // KEM needs a 256-bit message, hence the degree floor.
        if n >= 256 && ParamSet::for_degree(n).is_ok() {
            let encaps =
                ProtocolJob::scripted(ProtocolKind::Encaps, n, seed).expect("paper degree");
            results.push((
                format!("proto_encaps/{n}"),
                time_ns(|| {
                    std::hint::black_box(encaps.run_direct().unwrap());
                }),
            ));
            let sign = ProtocolJob::scripted(ProtocolKind::Sign, n, seed).expect("paper degree");
            results.push((
                format!("proto_sign/{n}"),
                time_ns(|| {
                    std::hint::black_box(sign.run_direct().unwrap());
                }),
            ));
        }

        // The functional engine models hardware provisioned for the
        // paper's degrees; skip the series where no architecture exists
        // (e.g. the 65536 NTT-coverage point).
        if let Ok(acc) = CryptoPim::new(&params) {
            let acc = acc.with_threads(threads);
            results.push((
                format!("engine_multiply/{n}"),
                time_ns(|| {
                    std::hint::black_box(acc.multiply_with_trace(&a, &b).unwrap());
                }),
            ));
            // Batch-fused engine path: B jobs share one StagePlan walk
            // over the pooled scratch slab. Per-job ns, so the series
            // reads directly against engine_multiply/{n}.
            let pairs: Vec<(Polynomial, Polynomial)> = (0..BATCH as u64)
                .map(|i| (operand(10 + i), operand(20 + i)))
                .collect();
            results.push((
                format!("engine_batch/{BATCH}x{n}"),
                time_ns(|| {
                    std::hint::black_box(
                        batch::multiply_batch_products(&acc, std::hint::black_box(&pairs)).unwrap(),
                    );
                }) / BATCH as f64,
            ));
        }
    }

    println!("{:<24} {:>14}", "benchmark", "ns/op (median)");
    for (id, ns) in &results {
        println!("{id:<24} {ns:>14.0}");
    }
    println!("workers: {workers}");

    if json {
        let path = opt(args, "--out").unwrap_or_else(|| format!("BENCH_{}.json", utc_timestamp()));
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
        out.push_str(&format!("  \"commit\": \"{}\",\n", git_commit()));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str("  \"benches\": [\n");
        for (i, (id, ns)) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"id\": \"{id}\", \"ns_per_op\": {ns:.0}}}{sep}\n"
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write benchmark JSON");
        println!("wrote {path}");
    }
}

/// `rns-bench`: residue-sharded wide-modulus multiply against the
/// sequential residue loop, bit-verified, with the simulator's modeled
/// fleet latency alongside the host wall-clock.
///
/// The host runs every residue lane on the same cores, so the fleet's
/// concurrency is invisible in wall-clock: the honest parallel-speedup
/// number comes from the pipeline model. The **sequential** modeled
/// latency is the sum of the per-lane pipelined latencies (one
/// superbank executes the k lanes back to back); the **sharded**
/// latency is the makespan of the same lanes placed greedily
/// (longest-first) on `--fleet` superbanks, which run concurrently by
/// construction — they share no banks, blocks, or wordlines. Both
/// paths' products are bit-compared against each other, and the first
/// job against the `O(n²)` schoolbook oracle, before any number is
/// reported; `--min-speedup` gates on the modeled speedup.
fn run_rns_bench(args: &[String]) {
    let parse_num = |name: &str, default: u64| -> u64 {
        match opt(args, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid {name}: {v}");
                std::process::exit(2);
            }),
        }
    };
    let n = parse_num("--degree", 4096) as usize;
    let channels = parse_num("--channels", 2).clamp(2, 4) as usize;
    let fleet = parse_num("--fleet", 2).max(1) as usize;
    let jobs = parse_num("--jobs", 8).max(1) as usize;
    let seed = parse_num("--seed", 7);

    let basis = RnsBasis::discover(n, channels, 1 << 20).unwrap_or_else(|e| {
        eprintln!("no {channels}-prime NTT-friendly basis at n = {n}: {e}");
        std::process::exit(2);
    });
    let rns = RnsMultiplier::with_basis(n, basis.clone()).expect("discovered basis fits");
    let q_wide = basis.modulus();
    println!(
        "rns-bench: n = {n}, k = {channels} residue channels {:?}, \
         wide modulus {q_wide} ({} bits), fleet {fleet}, {jobs} jobs, seed {seed}",
        basis.moduli(),
        128 - q_wide.leading_zeros()
    );

    let wide_operand = |salt: u64| -> Vec<u128> {
        (0..n as u64)
            .map(|i| {
                let hi = splitmix64(seed ^ (salt << 32) ^ i) as u128;
                let lo = splitmix64(seed ^ (salt << 32) ^ i ^ 0x5EED) as u128;
                (hi << 64 | lo) % q_wide
            })
            .collect()
    };
    let pairs: Vec<(Vec<u128>, Vec<u128>)> = (0..jobs as u64)
        .map(|i| (wide_operand(2 * i + 1), wide_operand(2 * i + 2)))
        .collect();

    // Bit-verification before any timing: sharded batch == sequential
    // loop on every job, and job 0 == the schoolbook oracle.
    let sharded = rns.multiply_batch(&pairs).expect("sharded batch");
    let sequential: Vec<Vec<u128>> = pairs
        .iter()
        .map(|(a, b)| rns.multiply(a, b).expect("sequential loop"))
        .collect();
    let mismatches = sharded
        .iter()
        .zip(&sequential)
        .filter(|(s, q)| s != q)
        .count();
    let oracle_ok = if q_wide < 1 << 63 {
        let oracle = ntt::rns::schoolbook_u128(&pairs[0].0, &pairs[0].1, q_wide);
        sharded[0] == oracle
    } else {
        true
    };
    if mismatches > 0 || !oracle_ok {
        eprintln!("FAILED: {mismatches} sharded/sequential mismatches, oracle match: {oracle_ok}");
        std::process::exit(1);
    }
    println!("verified: {jobs} sharded products == sequential loop; job 0 == schoolbook oracle");

    // Host wall-clock, per job (median over repeated passes).
    let wall_sharded_ns = time_ns(|| {
        std::hint::black_box(rns.multiply_batch(std::hint::black_box(&pairs)).unwrap());
    }) / jobs as f64;
    let wall_seq_ns = time_ns(|| {
        for (a, b) in &pairs {
            std::hint::black_box(rns.multiply(a, b).unwrap());
        }
    }) / jobs as f64;
    let wall_speedup = wall_seq_ns / wall_sharded_ns;

    // Modeled fleet latency from the pipeline model: per-lane pipelined
    // latency at (n, q_i), summed for the sequential loop, scheduled
    // longest-first over the fleet for the sharded path.
    let lane_latency_us: Vec<f64> = basis
        .moduli()
        .iter()
        .map(|&q| {
            let bits = if q < 1 << 16 { 16 } else { 32 };
            let params = ParamSet::custom(n, q, bits).expect("lane parameters");
            CryptoPim::new(&params)
                .expect("lane architecture")
                .report()
                .expect("lane report")
                .pipelined
                .latency_us
        })
        .collect();
    let modeled_seq_us: f64 = lane_latency_us.iter().sum();
    let mut bank_load = vec![0.0f64; fleet.min(channels)];
    let mut lanes_desc = lane_latency_us.clone();
    lanes_desc.sort_by(|a, b| b.partial_cmp(a).expect("finite latency"));
    for lane in lanes_desc {
        let min = bank_load
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite load"))
            .expect("fleet >= 1");
        *min += lane;
    }
    let modeled_sharded_us = bank_load.iter().cloned().fold(0.0f64, f64::max);
    let modeled_speedup = modeled_seq_us / modeled_sharded_us;

    println!(
        "host wall-clock: sharded {wall_sharded_ns:.0} ns/job, \
         sequential {wall_seq_ns:.0} ns/job ({wall_speedup:.2}× — one core runs all lanes)"
    );
    println!(
        "modeled fleet:   per-lane {lane_latency_us:?} µs; sequential {modeled_seq_us:.2} µs, \
         sharded over {fleet} superbanks {modeled_sharded_us:.2} µs → {modeled_speedup:.2}× per job"
    );

    if args.iter().any(|a| a == "--json") {
        let path =
            opt(args, "--out").unwrap_or_else(|| format!("BENCH_rns_{}.json", utc_timestamp()));
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
        out.push_str(&format!("  \"commit\": \"{}\",\n", git_commit()));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"degree\": {n},\n"));
        out.push_str(&format!("  \"channels\": {channels},\n"));
        out.push_str(&format!("  \"fleet\": {fleet},\n"));
        out.push_str(&format!("  \"jobs\": {jobs},\n"));
        out.push_str(&format!(
            "  \"moduli\": [{}],\n",
            basis
                .moduli()
                .iter()
                .map(|q| q.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"wide_modulus\": \"{q_wide}\",\n"));
        out.push_str(&format!(
            "  \"verified\": {},\n",
            mismatches == 0 && oracle_ok
        ));
        out.push_str(&format!(
            "  \"wall_sharded_ns_per_job\": {wall_sharded_ns:.0},\n"
        ));
        out.push_str(&format!("  \"wall_seq_ns_per_job\": {wall_seq_ns:.0},\n"));
        out.push_str(&format!("  \"wall_speedup\": {wall_speedup:.3},\n"));
        out.push_str(&format!(
            "  \"modeled_lane_latency_us\": [{}],\n",
            lane_latency_us
                .iter()
                .map(|l| format!("{l:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"modeled_seq_us\": {modeled_seq_us:.3},\n"));
        out.push_str(&format!(
            "  \"modeled_sharded_us\": {modeled_sharded_us:.3},\n"
        ));
        out.push_str(&format!("  \"modeled_speedup\": {modeled_speedup:.3}\n"));
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write rns-bench JSON");
        println!("wrote {path}");
    }

    if let Some(min) = opt(args, "--min-speedup") {
        let min: f64 = min.parse().unwrap_or_else(|_| {
            eprintln!("invalid --min-speedup");
            std::process::exit(2);
        });
        if modeled_speedup < min {
            eprintln!(
                "FAILED: modeled fleet speedup {modeled_speedup:.2}× below required {min:.2}×"
            );
            std::process::exit(1);
        }
    }
}

/// Parses `--check off | residue[:points[:seed]] | recompute`,
/// returning the policy and the raw argument for report labels.
fn parse_check_policy(args: &[String], default_seed: u64) -> (CheckPolicy, String) {
    let check_arg = opt(args, "--check").unwrap_or_else(|| "off".into());
    let check = match check_arg.as_str() {
        "off" => CheckPolicy::Disabled,
        "recompute" => CheckPolicy::Recompute,
        other => {
            let mut parts = other.split(':');
            if parts.next() != Some("residue") {
                eprintln!("unknown check policy: {other}");
                std::process::exit(2);
            }
            let points: u8 = parts.next().map_or(Ok(3), str::parse).unwrap_or_else(|_| {
                eprintln!("invalid residue point count in --check {other}");
                std::process::exit(2);
            });
            let pt_seed: u64 = parts
                .next()
                .map_or(Ok(default_seed), str::parse)
                .unwrap_or_else(|_| {
                    eprintln!("invalid residue seed in --check {other}");
                    std::process::exit(2);
                });
            CheckPolicy::residue(points, pt_seed)
        }
    };
    (check, check_arg)
}

/// `serve-loadgen`: drives the batch-forming job scheduler with a
/// seeded workload, verifies products against the direct engine path,
/// and exits 1 on any mismatch, drop, or execution failure.
fn run_serve_loadgen(args: &[String]) {
    if args.iter().any(|a| a == "--tcp") {
        // The socket-path variant lives in its own function: different
        // loop structure, different report, different gate.
        run_tcp_loadgen(args);
        return;
    }
    if opt(args, "--protocols").is_some() {
        // Full protocol ops through the job-graph layer, not raw
        // multiply pairs: its own stream, report, and gates.
        run_protocol_loadgen(args);
        return;
    }
    let parse_num = |name: &str, default: u64| -> u64 {
        match opt(args, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid {name}: {v}");
                std::process::exit(2);
            }),
        }
    };
    let seed = parse_num("--seed", 7);
    // Defaults favour stable measurement over spectacle: enough jobs
    // to dominate thread spin-up, and a small fleet — closed-loop
    // clients and workers contend for the same host cores, so modest
    // counts measure the scheduler rather than the context switcher.
    let jobs = parse_num("--jobs", 1920) as usize;
    let clients = parse_num("--clients", 4).max(1) as usize;
    let workers = parse_num("--workers", 2).max(1) as usize;
    let queue_cap = parse_num("--queue-cap", 4096).max(1) as usize;
    let linger_us = parse_num("--linger-us", 500);
    let degrees = if opt(args, "--degrees").is_some() {
        parse_degrees(args)
    } else {
        vec![256, 512, 1024]
    };
    let mode = match opt(args, "--mode").as_deref() {
        None | Some("closed") => LoadMode::Closed { clients },
        Some("open") => {
            let rate: f64 = opt(args, "--rate")
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("invalid --rate: {v}");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(20_000.0);
            LoadMode::Open { rate_per_s: rate }
        }
        Some(other) => {
            eprintln!("unknown mode: {other}");
            std::process::exit(2);
        }
    };
    let backpressure = match opt(args, "--backpressure").as_deref() {
        None | Some("block") => Backpressure::Block,
        Some("reject") => Backpressure::Reject,
        Some(other) => {
            eprintln!("unknown backpressure policy: {other}");
            std::process::exit(2);
        }
    };
    let verify = !args.iter().any(|a| a == "--no-verify");
    // --hot-keys K: protocol-shaped workload — every job's `a` operand
    // comes from a pool of K reused seeded keys, and the service runs
    // with a hot-operand transform cache sized to hold all of them.
    let hot_keys = parse_num("--hot-keys", 0) as usize;
    // --wide R: a seeded fraction R of the stream becomes wide
    // RNS-decomposed jobs whose residue lanes shard across the fleet.
    let wide: f64 = match opt(args, "--wide") {
        None => 0.0,
        Some(v) => match v.parse() {
            Ok(r) if (0.0..=1.0).contains(&r) => r,
            _ => {
                eprintln!("invalid --wide (need a fraction in 0..=1): {v}");
                std::process::exit(2);
            }
        },
    };
    let wide_channels = parse_num("--wide-channels", 2).clamp(2, 4) as usize;
    let (check, check_arg) = parse_check_policy(args, seed);

    let config = LoadgenConfig {
        seed,
        jobs,
        degrees: degrees.clone(),
        hot_keys,
        mode,
        service: ServiceConfig {
            workers,
            queue_capacity: queue_cap,
            backpressure,
            linger: Duration::from_micros(linger_us),
            check,
            hot_capacity: hot_keys,
            ..ServiceConfig::default()
        },
        verify_direct: verify,
        wide,
        wide_channels,
    };
    println!(
        "serve-loadgen: seed {seed}, {jobs} jobs over n ∈ {degrees:?}, {mode:?}, \
         {workers} superbank workers, queue {queue_cap} ({backpressure:?}), linger {linger_us} µs, \
         check {check_arg}, hot keys {hot_keys}, wide blend {wide} × {wide_channels} channels"
    );
    let report = loadgen::run(&config);

    println!(
        "service: {} ok, {} rejected, {} failed in {:.3} s → {:.0} mult/s",
        report.ok, report.rejected, report.failed, report.wall_s, report.throughput
    );
    if report.wide_jobs > 0 {
        let s = &report.stats;
        println!(
            "wide jobs: {} of {} ({} lanes each); p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs",
            report.wide_jobs,
            report.jobs,
            wide_channels,
            s.wide_p50_us,
            s.wide_p95_us,
            s.wide_p99_us
        );
    }
    if verify {
        println!(
            "direct (one-at-a-time CryptoPim::multiply): {:.3} s → {:.0} mult/s; \
             service speedup {:.2}×, {} product mismatches",
            report.direct_wall_s, report.direct_throughput, report.speedup, report.mismatches
        );
    }
    println!("{}", report.stats);
    let phase_line = |label: &str, p: &PhaseSnapshot| {
        if p.engine_ns + p.check_total_ns() + p.recombine_ns > 0 {
            println!(
                "{label} phases: engine {:.1} ms, check transform {:.1} ms, \
                 pointwise {:.1} ms, compare {:.1} ms, recombine {:.1} ms",
                p.engine_ns as f64 / 1e6,
                p.check_transform_ns as f64 / 1e6,
                p.check_pointwise_ns as f64 / 1e6,
                p.check_compare_ns as f64 / 1e6,
                p.recombine_ns as f64 / 1e6,
            );
        }
    };
    phase_line("service", &report.phase);
    if verify {
        phase_line("direct", &report.direct_phase);
    }

    if args.iter().any(|a| a == "--json") {
        let path =
            opt(args, "--out").unwrap_or_else(|| format!("BENCH_service_{}.json", utc_timestamp()));
        let s = &report.stats;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
        out.push_str(&format!("  \"commit\": \"{}\",\n", git_commit()));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!(
            "  \"degrees\": [{}],\n",
            degrees
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            match mode {
                LoadMode::Closed { .. } => "closed",
                LoadMode::Open { .. } => "open",
            }
        ));
        out.push_str(&format!("  \"clients\": {clients},\n"));
        out.push_str(&format!("  \"queue_capacity\": {queue_cap},\n"));
        out.push_str(&format!(
            "  \"backpressure\": \"{}\",\n",
            match backpressure {
                Backpressure::Block => "block",
                Backpressure::Reject => "reject",
            }
        ));
        out.push_str(&format!("  \"linger_us\": {linger_us},\n"));
        out.push_str(&format!("  \"jobs\": {},\n", report.jobs));
        out.push_str(&format!("  \"wide_jobs\": {},\n", report.wide_jobs));
        out.push_str(&format!("  \"wide_blend\": {wide},\n"));
        out.push_str(&format!("  \"wide_channels\": {wide_channels},\n"));
        out.push_str(&format!("  \"ok\": {},\n", report.ok));
        out.push_str(&format!("  \"rejected\": {},\n", report.rejected));
        out.push_str(&format!("  \"failed\": {},\n", report.failed));
        out.push_str(&format!("  \"mismatches\": {},\n", report.mismatches));
        out.push_str(&format!("  \"dropped\": {},\n", report.dropped));
        out.push_str(&format!("  \"throughput\": {:.1},\n", report.throughput));
        out.push_str(&format!(
            "  \"direct_throughput\": {:.1},\n",
            report.direct_throughput
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", report.speedup));
        // The whole stats block in one shot — the same serializer the
        // net crate's Stats verb uses, so every emitter agrees on
        // field names and formatting.
        out.push_str(&format!("  \"service_stats\": {},\n", s.to_json()));
        out.push_str(&format!("  \"check\": \"{check_arg}\",\n"));
        out.push_str(&format!("  \"hot_keys\": {hot_keys},\n"));
        let lookups = s.hot_hits + s.hot_misses;
        out.push_str(&format!(
            "  \"hot_hit_rate\": {:.4},\n",
            if lookups == 0 {
                0.0
            } else {
                s.hot_hits as f64 / lookups as f64
            }
        ));
        let phase_json = |p: &PhaseSnapshot| {
            format!(
                "{{ \"engine_ns\": {}, \"check_transform_ns\": {}, \
                 \"check_pointwise_ns\": {}, \"check_compare_ns\": {}, \
                 \"recombine_ns\": {} }}",
                p.engine_ns,
                p.check_transform_ns,
                p.check_pointwise_ns,
                p.check_compare_ns,
                p.recombine_ns
            )
        };
        out.push_str(&format!("  \"phase\": {},\n", phase_json(&report.phase)));
        out.push_str(&format!(
            "  \"direct_phase\": {}\n",
            phase_json(&report.direct_phase)
        ));
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write service JSON");
        println!("wrote {path}");
    }

    if !report.is_clean() {
        eprintln!(
            "FAILED: {} mismatches, {} dropped, {} failed",
            report.mismatches, report.dropped, report.failed
        );
        std::process::exit(1);
    }
    if let Some(min) = opt(args, "--min-speedup") {
        let min: f64 = min.parse().unwrap_or_else(|_| {
            eprintln!("invalid --min-speedup");
            std::process::exit(2);
        });
        if verify && report.speedup < min {
            eprintln!(
                "FAILED: service speedup {:.2}× below required {min:.2}×",
                report.speedup
            );
            std::process::exit(1);
        }
    }
}

/// `serve-loadgen --protocols`: drives a weighted mix of full protocol
/// ops (KEM, signatures, SHE, raw multiplies) through the job-graph
/// layer, bit-verifies every output against the direct host path, and
/// measures the hot-operand cache under key **reuse** versus key
/// **churn** by running the same stream twice — once with long-lived
/// keys and once rotating them every `--key-churn` ops. Exits 1 on any
/// mismatch/failure or when the reuse run's packed-lane occupancy falls
/// below `--min-occupancy`.
fn run_protocol_loadgen(args: &[String]) {
    let parse_num = |name: &str, default: u64| -> u64 {
        match opt(args, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid {name}: {v}");
                std::process::exit(2);
            }),
        }
    };
    let seed = parse_num("--seed", 7);
    let ops = parse_num("--ops", 192) as usize;
    let clients = parse_num("--clients", 4).max(1) as usize;
    let workers = parse_num("--workers", 2).max(1) as usize;
    let protocol_workers = parse_num("--protocol-workers", 4).max(1) as usize;
    let linger_us = parse_num("--linger-us", 500);
    let hot_capacity = parse_num("--hot-capacity", 64) as usize;
    let key_churn = parse_num("--key-churn", 1).max(1) as usize;
    let degrees = if opt(args, "--degrees").is_some() {
        parse_degrees(args)
    } else {
        vec![256]
    };
    let mix_spec = opt(args, "--protocols").expect("--protocols checked by caller");
    let mix = ProtocolMix::parse(&mix_spec).unwrap_or_else(|e| {
        eprintln!("invalid --protocols: {e}");
        std::process::exit(2);
    });
    let verify = !args.iter().any(|a| a == "--no-verify");
    let (check, check_arg) = parse_check_policy(args, seed);
    let service = ServiceConfig {
        workers,
        protocol_workers,
        linger: Duration::from_micros(linger_us),
        check,
        hot_capacity,
        ..ServiceConfig::default()
    };
    println!(
        "serve-loadgen --protocols: seed {seed}, {ops} ops of [{mix_spec}] over n ∈ {degrees:?}, \
         {clients} clients, {workers} superbank workers + {protocol_workers} graph executors, \
         linger {linger_us} µs, check {check_arg}, hot capacity {hot_capacity}"
    );

    // Reuse leg: one key pool for the whole run (key_churn = 0).
    // Churn leg: identical shape, keys rotated every --key-churn ops.
    let run_leg = |key_churn: usize| {
        protoload::run_protocols(&ProtoLoadgenConfig {
            seed,
            ops,
            degrees: degrees.clone(),
            mix: mix.clone(),
            key_churn,
            clients,
            service: service.clone(),
            verify_direct: verify,
        })
    };
    let reuse = run_leg(0);
    let churn = run_leg(key_churn);

    for (label, report) in [("reuse", &reuse), ("churn", &churn)] {
        println!(
            "{label}: {} ok, {} failed, {} mismatches in {:.3} s → {:.0} ops/s; \
             hot hit rate {:.1} % ({} / {} lookups); occupancy {:.2}",
            report.ok,
            report.failed,
            report.mismatches,
            report.wall_s,
            report.throughput,
            100.0 * report.hot_hit_rate(),
            report.stats.hot_hits,
            report.stats.hot_hits + report.stats.hot_misses,
            report.stats.mean_occupancy,
        );
        for lane in &report.stats.protocol {
            if lane.submitted > 0 {
                println!(
                    "  {label}/{:<8} {} ops; p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs",
                    lane.kind, lane.completed, lane.p50_us, lane.p95_us, lane.p99_us
                );
            }
        }
    }

    if args.iter().any(|a| a == "--json") {
        let path = opt(args, "--out")
            .unwrap_or_else(|| format!("BENCH_protocols_{}.json", utc_timestamp()));
        let leg_json =
            |report: &service::ProtoLoadgenReport, key_churn: usize| -> String {
                let mut out = String::from("{\n");
                out.push_str(&format!("    \"key_churn\": {key_churn},\n"));
                out.push_str(&format!("    \"ops\": {},\n", report.ops));
                out.push_str(&format!("    \"ok\": {},\n", report.ok));
                out.push_str(&format!("    \"failed\": {},\n", report.failed));
                out.push_str(&format!("    \"mismatches\": {},\n", report.mismatches));
                out.push_str(&format!("    \"throughput\": {:.1},\n", report.throughput));
                out.push_str(&format!(
                    "    \"hot_hit_rate\": {:.4},\n",
                    report.hot_hit_rate()
                ));
                out.push_str(&format!(
                    "    \"mean_occupancy\": {:.3},\n",
                    report.stats.mean_occupancy
                ));
                out.push_str("    \"per_kind\": [\n");
                let lanes: Vec<String> =
                    report
                        .per_kind
                        .iter()
                        .map(|k| {
                            let lane = report
                                .stats
                                .protocol
                                .iter()
                                .find(|l| l.kind == k.kind.as_str())
                                .expect("served kind has a stats lane");
                            format!(
                        "      {{ \"kind\": \"{}\", \"ops\": {}, \"ok\": {}, \"failed\": {}, \
                         \"mismatches\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
                         \"p99_us\": {:.1} }}",
                        k.kind, k.ops, k.ok, k.failed, k.mismatches, lane.p50_us, lane.p95_us,
                        lane.p99_us
                    )
                        })
                        .collect();
                out.push_str(&lanes.join(",\n"));
                out.push_str("\n    ],\n");
                out.push_str(&format!(
                    "    \"service_stats\": {}\n",
                    report.stats.to_json()
                ));
                out.push_str("  }");
                out
            };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
        out.push_str(&format!("  \"commit\": \"{}\",\n", git_commit()));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"mix\": \"{mix_spec}\",\n"));
        out.push_str(&format!(
            "  \"degrees\": [{}],\n",
            degrees
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"clients\": {clients},\n"));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str(&format!("  \"protocol_workers\": {protocol_workers},\n"));
        out.push_str(&format!("  \"linger_us\": {linger_us},\n"));
        out.push_str(&format!("  \"check\": \"{check_arg}\",\n"));
        out.push_str(&format!("  \"hot_capacity\": {hot_capacity},\n"));
        out.push_str(&format!("  \"reuse\": {},\n", leg_json(&reuse, 0)));
        out.push_str(&format!("  \"churn\": {}\n", leg_json(&churn, key_churn)));
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write protocol loadgen JSON");
        println!("wrote {path}");
    }

    let mut sound = true;
    for (label, report) in [("reuse", &reuse), ("churn", &churn)] {
        if !report.is_clean() {
            eprintln!(
                "FAILED ({label}): {} mismatches, {} failed of {} ops",
                report.mismatches, report.failed, report.ops
            );
            sound = false;
        }
    }
    if let Some(min) = opt(args, "--min-occupancy") {
        let min: f64 = min.parse().unwrap_or_else(|_| {
            eprintln!("invalid --min-occupancy");
            std::process::exit(2);
        });
        if reuse.stats.mean_occupancy < min {
            eprintln!(
                "FAILED: mean occupancy {:.2} below required {min:.2} — concurrent \
                 protocol ops are not sharing batches",
                reuse.stats.mean_occupancy
            );
            sound = false;
        }
    }
    if !sound {
        std::process::exit(1);
    }
}

/// `fault-campaign`: seeded fault-injection sweep over the
/// recover-or-quarantine serving stack. Prints a per-cell table and the
/// aggregate coverage/overhead, optionally writes a `BENCH_faults_*`
/// JSON snapshot, and exits 1 when the campaign is unsound (a corrupt
/// product was served, or a job failed outside the fault machinery).
fn run_fault_campaign(args: &[String]) {
    let parse_num = |name: &str, default: u64| -> u64 {
        match opt(args, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid {name}: {v}");
                std::process::exit(2);
            }),
        }
    };
    let defaults = CampaignConfig::default();
    let seed = parse_num("--seed", defaults.seed);
    let jobs = parse_num("--jobs", defaults.jobs_per_cell as u64).max(1) as usize;
    let points = parse_num("--points", u64::from(defaults.check_points)).min(255) as u8;
    let max_attempts = parse_num("--max-attempts", u64::from(defaults.max_attempts)) as u32;
    let quarantine_after =
        parse_num("--quarantine-after", u64::from(defaults.quarantine_after)) as u32;
    let degrees = if opt(args, "--degrees").is_some() {
        parse_degrees(args)
    } else {
        defaults.degrees.clone()
    };
    let kinds = match opt(args, "--kinds") {
        None => defaults.kinds.clone(),
        Some(v) => v
            .split(',')
            .map(|s| match s.trim() {
                "stuck0" => CampaignKind::StuckAt0,
                "stuck1" => CampaignKind::StuckAt1,
                "transient" => CampaignKind::Transient,
                "wearout" => CampaignKind::WearOut,
                other => {
                    eprintln!("unknown fault kind: {other}");
                    std::process::exit(2);
                }
            })
            .collect(),
    };
    let rates: Vec<f64> = match opt(args, "--rates") {
        None => defaults.rates.clone(),
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("invalid --rates entry: {s}");
                    std::process::exit(2);
                })
            })
            .collect(),
    };

    let hot_keys = parse_num("--hot-keys", 0) as usize;

    let config = CampaignConfig {
        seed,
        degrees: degrees.clone(),
        kinds,
        rates,
        jobs_per_cell: jobs,
        check_points: points,
        max_attempts,
        quarantine_after,
        hot_keys,
    };
    println!(
        "fault-campaign: seed {seed}, {jobs} jobs/cell over n ∈ {degrees:?}, \
         {} kinds × {} rates, {points}-point screen, \
         {max_attempts} attempts, quarantine after {quarantine_after}, hot keys {hot_keys}",
        config.kinds.len(),
        config.rates.len()
    );
    let report = campaign::run(&config);

    println!(
        "{:<10} {:>6} {:>8} {:>6} {:>6} {:>6} {:>7} {:>9} {:>8} {:>10} {:>5} {:>13}",
        "kind",
        "n",
        "rate",
        "served",
        "wrong",
        "unrec",
        "refused",
        "detected",
        "retries",
        "recovered",
        "quar",
        "screen"
    );
    for c in &report.cells {
        println!(
            "{:<10} {:>6} {:>8.0e} {:>6} {:>6} {:>6} {:>7} {:>9} {:>8} {:>10} {:>5} {:>6}/{:<6}",
            c.kind.label(),
            c.degree,
            c.rate,
            c.served,
            c.wrong,
            c.unrecovered,
            c.refused,
            c.detected,
            c.retries,
            c.recovered,
            c.quarantined_banks,
            c.screen_detected,
            c.screen_corrupted,
        );
    }
    println!(
        "referee detection coverage: {:.3} ({} detected, {} wrong)",
        report.detection_coverage, report.detected, report.wrong
    );
    println!(
        "residue screen coverage:    {:.3} (probabilistic {points}-point check, measured)",
        report.residue_coverage
    );
    println!(
        "recovery overhead:          {:.2}× over the fault-free direct path",
        report.recovery_overhead
    );
    let hot_hits: u64 = report.cells.iter().map(|c| c.hot_hits).sum();
    if hot_keys > 0 {
        println!("hot cache hits:             {hot_hits} (reused-key workload, cache capacity {hot_keys})");
    }

    if args.iter().any(|a| a == "--json") {
        let path =
            opt(args, "--out").unwrap_or_else(|| format!("BENCH_faults_{}.json", utc_timestamp()));
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
        out.push_str(&format!("  \"commit\": \"{}\",\n", git_commit()));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"jobs_per_cell\": {jobs},\n"));
        out.push_str(&format!("  \"check_points\": {points},\n"));
        out.push_str(&format!("  \"max_attempts\": {max_attempts},\n"));
        out.push_str(&format!("  \"quarantine_after\": {quarantine_after},\n"));
        out.push_str(&format!("  \"hot_keys\": {hot_keys},\n"));
        out.push_str(&format!("  \"hot_hits\": {hot_hits},\n"));
        out.push_str(&format!(
            "  \"detection_coverage\": {:.4},\n",
            report.detection_coverage
        ));
        out.push_str(&format!(
            "  \"residue_coverage\": {:.4},\n",
            report.residue_coverage
        ));
        out.push_str(&format!(
            "  \"recovery_overhead\": {:.4},\n",
            report.recovery_overhead
        ));
        out.push_str(&format!("  \"detected\": {},\n", report.detected));
        out.push_str(&format!("  \"wrong\": {},\n", report.wrong));
        out.push_str("  \"cells\": [\n");
        for (i, c) in report.cells.iter().enumerate() {
            let sep = if i + 1 == report.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"degree\": {}, \"rate\": {:e}, \"jobs\": {}, \
                 \"served\": {}, \"wrong\": {}, \"unrecovered\": {}, \"refused\": {}, \
                 \"detected\": {}, \"retries\": {}, \"recovered\": {}, \
                 \"quarantined_banks\": {}, \"screen_corrupted\": {}, \
                 \"screen_detected\": {}, \"residue_coverage\": {:.4}, \
                 \"hot_hits\": {}, \"stats\": {}}}{sep}\n",
                c.kind.label(),
                c.degree,
                c.rate,
                c.jobs,
                c.served,
                c.wrong,
                c.unrecovered,
                c.refused,
                c.detected,
                c.retries,
                c.recovered,
                c.quarantined_banks,
                c.screen_corrupted,
                c.screen_detected,
                c.residue_coverage(),
                c.hot_hits,
                c.stats.to_json(),
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write fault-campaign JSON");
        println!("wrote {path}");
    }

    // --wide: one extra cell streams RNS-decomposed wide jobs through
    // the residue-sharded pipeline under seeded transient faults. The
    // claim gated here is the per-lane checking story: a fault lands in
    // one residue lane, is detected and retried alone, and the
    // recombined product is never wrong.
    if args.iter().any(|a| a == "--wide") {
        let wide_channels = parse_num("--wide-channels", 2).clamp(2, 4) as usize;
        let wide_rate = match opt(args, "--wide-rate") {
            None => 1e-5,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid --wide-rate: {v}");
                std::process::exit(2);
            }),
        };
        let wide_degree = *degrees.first().expect("non-empty degrees");
        let wide = campaign::run_wide_cell(&WideCellConfig {
            seed,
            degree: wide_degree,
            channels: wide_channels,
            jobs,
            rate: wide_rate,
            max_attempts,
            quarantine_after,
        });
        println!(
            "wide cell: n = {}, k = {} lanes, rate {:.0e}: {} served, {} wrong, \
             {} unrecovered, {} refused, {} detected, {} recovered, {} jobs with a lane retry",
            wide.degree,
            wide.channels,
            wide.rate,
            wide.served,
            wide.wrong,
            wide.unrecovered,
            wide.refused,
            wide.detected,
            wide.recovered,
            wide.lane_retry_jobs
        );
        if wide.wrong > 0 || wide.failed > 0 {
            eprintln!(
                "FAILED: wide cell unsound — {} wrong recombined products, {} non-fault failures",
                wide.wrong, wide.failed
            );
            std::process::exit(1);
        }
        if wide_rate > 0.0 && (wide.detected < 1 || wide.recovered < 1) {
            eprintln!(
                "FAILED: wide cell proved nothing — {} detected, {} recovered at rate {wide_rate:e}",
                wide.detected, wide.recovered
            );
            std::process::exit(1);
        }
    }

    // --protocols: one extra cell streams full protocol ops (KEM,
    // signing, SHE) through the job-graph layer under seeded transient
    // faults. The claim gated here is per-node fault isolation: a fault
    // lands in one graph node, is detected and retried alone, and the
    // op's typed output is never wrong.
    if args.iter().any(|a| a == "--protocols") {
        let proto_rate = match opt(args, "--protocol-rate") {
            None => 1e-4,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid --protocol-rate: {v}");
                std::process::exit(2);
            }),
        };
        let proto_degree = *degrees.first().expect("non-empty degrees");
        let proto = campaign::run_protocol_cell(&ProtocolCellConfig {
            seed,
            degree: proto_degree,
            ops: jobs,
            rate: proto_rate,
            max_attempts: max_attempts.max(6),
            quarantine_after,
        });
        println!(
            "protocol cell: n = {}, rate {:.0e}: {} served, {} wrong, {} unrecovered, \
             {} refused, {} detected, {} recovered, {} ops with a node retry",
            proto.degree,
            proto.rate,
            proto.served,
            proto.wrong,
            proto.unrecovered,
            proto.refused,
            proto.detected,
            proto.recovered,
            proto.node_retry_ops
        );
        if proto.wrong > 0 || proto.failed > 0 {
            eprintln!(
                "FAILED: protocol cell unsound — {} wrong typed outputs, {} non-fault failures",
                proto.wrong, proto.failed
            );
            std::process::exit(1);
        }
        if proto_rate > 0.0 && (proto.detected < 1 || proto.recovered < 1) {
            eprintln!(
                "FAILED: protocol cell proved nothing — {} detected, {} recovered at rate {proto_rate:e}",
                proto.detected, proto.recovered
            );
            std::process::exit(1);
        }
    }

    if !report.is_sound() {
        eprintln!(
            "FAILED: campaign unsound — {} corrupt products served, {} non-fault failures",
            report.wrong,
            report.cells.iter().map(|c| c.failed).sum::<usize>()
        );
        std::process::exit(1);
    }
    // A hot-keyed campaign that never hit the cache proved nothing
    // about the cached datapath — fail loudly instead of passing
    // vacuously (the CI fault-smoke hot cell relies on this).
    if hot_keys > 0 && hot_hits == 0 {
        eprintln!("FAILED: --hot-keys {hot_keys} requested but the hot cache was never hit");
        std::process::exit(1);
    }
}

/// `serve`: binds the TCP front end on `--listen` and serves until an
/// operator client sends the `Shutdown` verb (or the process is
/// killed). Wire format: DESIGN.md §15.
fn run_serve(args: &[String]) {
    let parse_num = |name: &str, default: u64| -> u64 {
        match opt(args, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid {name}: {v}");
                std::process::exit(2);
            }),
        }
    };
    let listen = opt(args, "--listen").unwrap_or_else(|| "127.0.0.1:7681".into());
    let Some(token) = opt(args, "--token") else {
        eprintln!("serve requires --token (the tenant auth token)");
        std::process::exit(2);
    };
    let quota = parse_num("--quota", 64).max(1) as usize;
    let workers = parse_num("--workers", 2).max(1) as usize;
    let queue_cap = parse_num("--queue-cap", 4096).max(2) as usize;
    let linger_us = parse_num("--linger-us", 500);
    let max_conns = parse_num("--max-conns", 256).max(1) as usize;
    let max_wait_ms = parse_num("--max-wait-ms", 30_000).max(1);
    let hot_keys = parse_num("--hot-keys", 0) as usize;
    let (check, check_arg) = parse_check_policy(args, 0);

    // The --token tenant can stop the server; --op-token adds a
    // separate operator identity when the serving tenant shouldn't
    // hold that capability.
    let mut tenants = vec![TenantConfig {
        name: "default".into(),
        token: token.clone(),
        quota,
        may_shutdown: opt(args, "--op-token").is_none(),
    }];
    if let Some(op) = opt(args, "--op-token") {
        tenants.push(TenantConfig {
            name: "operator".into(),
            token: op,
            quota: 1,
            may_shutdown: true,
        });
    }

    let config = ServerConfig {
        tenants,
        max_connections: max_conns,
        max_wait: Duration::from_millis(max_wait_ms),
        service: ServiceConfig {
            workers,
            queue_capacity: queue_cap,
            linger: Duration::from_micros(linger_us),
            check,
            hot_capacity: hot_keys,
            ..ServiceConfig::default()
        },
    };
    let server = Server::start(listen.as_str(), config).unwrap_or_else(|e| {
        eprintln!("cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    println!(
        "serving on {} — {workers} superbank workers, queue {queue_cap}, \
         quota {quota}/tenant, {max_conns} connections max, check {check_arg}; \
         send the Shutdown verb to stop",
        server.local_addr()
    );
    let stats = server.wait();
    println!("drained; final scheduler state:\n{stats}");
}

/// `serve-loadgen --tcp`: the socket-path load generator. Spins up an
/// in-process server on loopback (or targets `--connect ADDR`), drives
/// it with N client threads, bit-verifies every product against the
/// software NTT, and gates on mismatches and (optionally) tail
/// latency.
fn run_tcp_loadgen(args: &[String]) {
    let parse_num = |name: &str, default: u64| -> u64 {
        match opt(args, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid {name}: {v}");
                std::process::exit(2);
            }),
        }
    };
    let seed = parse_num("--seed", 7);
    let clients = parse_num("--clients", 64).max(1) as usize;
    let jobs = parse_num("--jobs", 1024).max(1) as usize;
    let jobs_per_client = jobs.div_ceil(clients);
    let window = parse_num("--window", 4).max(1) as usize;
    // Default tenant quota: room for every client's full window, so
    // quota rejects only appear when the operator asks for them.
    let quota = parse_num("--quota", (clients * window) as u64).max(1) as usize;
    let wait_timeout_ms = parse_num("--wait-timeout-ms", 10_000).min(u64::from(u32::MAX)) as u32;
    let workers = parse_num("--workers", 2).max(1) as usize;
    let queue_cap = parse_num("--queue-cap", 4096).max(2) as usize;
    let linger_us = parse_num("--linger-us", 500);
    let degrees = if opt(args, "--degrees").is_some() {
        parse_degrees(args)
    } else {
        vec![256, 512, 1024]
    };

    // Default: a self-contained run against an in-process server on an
    // ephemeral loopback port. --connect targets an external `serve`.
    let token = opt(args, "--token").unwrap_or_else(|| "loadgen".into());
    let (server, addr) = match opt(args, "--connect") {
        Some(external) => {
            let addr = external.parse().unwrap_or_else(|e| {
                eprintln!("invalid --connect {external}: {e}");
                std::process::exit(2);
            });
            (None, addr)
        }
        None => {
            let server = Server::start(
                "127.0.0.1:0",
                ServerConfig {
                    tenants: vec![TenantConfig::new("loadgen", &token, quota)],
                    max_connections: clients + 8,
                    max_wait: Duration::from_millis(u64::from(wait_timeout_ms)),
                    service: ServiceConfig {
                        workers,
                        queue_capacity: queue_cap,
                        linger: Duration::from_micros(linger_us),
                        ..ServiceConfig::default()
                    },
                },
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot bind loopback: {e}");
                std::process::exit(1);
            });
            let addr = server.local_addr();
            (Some(server), addr)
        }
    };

    let loop_kind = if window == 1 { "closed" } else { "open" };
    println!(
        "serve-loadgen --tcp: seed {seed}, {clients} clients × {jobs_per_client} jobs \
         ({loop_kind} loop, window {window}, quota {quota}) over n ∈ {degrees:?} against {addr}"
    );
    let report = net::loadgen::run_against(
        addr,
        &token,
        &TcpLoadConfig {
            seed,
            clients,
            jobs_per_client,
            degrees: degrees.clone(),
            window,
            wait_timeout_ms,
        },
    );
    if let Some(server) = server {
        server.shutdown();
    }

    println!(
        "tcp: {} of {} verified bit-exact, {} mismatches, {} failed in {:.3} s → {:.0} mult/s",
        report.verified,
        report.jobs,
        report.mismatches,
        report.failed,
        report.wall_s,
        report.throughput
    );
    println!(
        "client-observed latency: p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs, max {} µs",
        report.p50_us, report.p95_us, report.p99_us, report.max_us
    );
    println!(
        "flow control: {} quota rejects, {} sheds, {} wait timeouts, {} fault-recovered",
        report.quota_rejected, report.shed, report.wait_timeouts, report.recovered
    );

    if args.iter().any(|a| a == "--json") {
        let path =
            opt(args, "--out").unwrap_or_else(|| format!("BENCH_tcp_{}.json", utc_timestamp()));
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
        out.push_str(&format!("  \"commit\": \"{}\",\n", git_commit()));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"clients\": {clients},\n"));
        out.push_str(&format!("  \"jobs_per_client\": {jobs_per_client},\n"));
        out.push_str(&format!("  \"window\": {window},\n"));
        out.push_str(&format!("  \"quota\": {quota},\n"));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str(&format!(
            "  \"degrees\": [{}],\n",
            degrees
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"jobs\": {},\n", report.jobs));
        out.push_str(&format!("  \"verified\": {},\n", report.verified));
        out.push_str(&format!("  \"mismatches\": {},\n", report.mismatches));
        out.push_str(&format!("  \"failed\": {},\n", report.failed));
        out.push_str(&format!(
            "  \"quota_rejected\": {},\n",
            report.quota_rejected
        ));
        out.push_str(&format!("  \"shed\": {},\n", report.shed));
        out.push_str(&format!("  \"wait_timeouts\": {},\n", report.wait_timeouts));
        out.push_str(&format!("  \"recovered\": {},\n", report.recovered));
        out.push_str(&format!("  \"wall_s\": {:.3},\n", report.wall_s));
        out.push_str(&format!("  \"throughput\": {:.1},\n", report.throughput));
        out.push_str(&format!("  \"p50_us\": {:.1},\n", report.p50_us));
        out.push_str(&format!("  \"p95_us\": {:.1},\n", report.p95_us));
        out.push_str(&format!("  \"p99_us\": {:.1},\n", report.p99_us));
        out.push_str(&format!("  \"max_us\": {},\n", report.max_us));
        // The server's own Stats-verb document, verbatim: net counters
        // plus the scheduler's ServiceStats::to_json object.
        if report.stats_json.is_empty() {
            out.push_str("  \"server\": null\n");
        } else {
            out.push_str(&format!("  \"server\": {}\n", report.stats_json.trim()));
        }
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write tcp loadgen JSON");
        println!("wrote {path}");
    }

    // Sanity-check the Stats verb from the consumer side: the embedded
    // service object must parse with the dependency-free reader.
    if !report.stats_json.is_empty() {
        let parsed = extract_object(&report.stats_json, "service")
            .and_then(service::ServiceStats::from_json);
        if parsed.is_none() {
            eprintln!("FAILED: Stats verb returned an unparseable service object");
            std::process::exit(1);
        }
    }

    if !report.is_clean() {
        eprintln!(
            "FAILED: {} mismatches, {} failed, {} of {} verified",
            report.mismatches, report.failed, report.verified, report.jobs
        );
        std::process::exit(1);
    }
    if let Some(max) = opt(args, "--max-p99-us") {
        let max: f64 = max.parse().unwrap_or_else(|_| {
            eprintln!("invalid --max-p99-us");
            std::process::exit(2);
        });
        if report.p99_us > max {
            eprintln!(
                "FAILED: client-observed p99 {:.0} µs above the {max:.0} µs gate",
                report.p99_us
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    match command.as_str() {
        // `cli -- --json` is shorthand for `cli -- bench --json`.
        "bench" | "--json" => {
            run_bench(&args);
            return;
        }
        "rns-bench" => {
            run_rns_bench(&args);
            return;
        }
        "serve-loadgen" => {
            run_serve_loadgen(&args);
            return;
        }
        "serve" => {
            run_serve(&args);
            return;
        }
        "fault-campaign" => {
            run_fault_campaign(&args);
            return;
        }
        _ => {}
    }

    match command.as_str() {
        "simulate" => {
            let n = parse_degree(&args, 1024);
            let org = match opt(&args, "--org").as_deref() {
                None | Some("cryptopim") => Organization::CryptoPim,
                Some("naive") => Organization::Naive,
                Some("area") => Organization::AreaEfficient,
                Some(other) => {
                    eprintln!("unknown organization: {other}");
                    std::process::exit(2);
                }
            };
            let params = ParamSet::for_degree(n).unwrap_or_else(|e| {
                eprintln!("bad degree: {e}");
                std::process::exit(2);
            });
            let acc = CryptoPim::with_configuration(
                &params,
                org,
                MultiplierKind::CryptoPim,
                ReductionStyle::CryptoPim,
            )
            .expect("paper parameters");
            println!("{}", acc.report().expect("report"));
        }
        "baseline" => {
            let n = parse_degree(&args, 1024);
            let design = match opt(&args, "--design").as_deref() {
                Some("bp1") => PimDesign::Bp1,
                Some("bp2") => PimDesign::Bp2,
                Some("bp3") => PimDesign::Bp3,
                None | Some("cryptopim") => PimDesign::CryptoPim,
                Some(other) => {
                    eprintln!("unknown design: {other}");
                    std::process::exit(2);
                }
            };
            let params = ParamSet::for_degree(n).unwrap_or_else(|e| {
                eprintln!("bad degree: {e}");
                std::process::exit(2);
            });
            let latency = design.latency_us(&params).expect("paper parameters");
            println!(
                "{design} at n = {n}: non-pipelined latency {latency:.2} µs \
                 (multiplier: {:?}, reduction: {:?})",
                design.multiplier(),
                design.reduction()
            );
        }
        "verify" => {
            let n = parse_degree(&args, 1024);
            let params = ParamSet::for_degree(n).unwrap_or_else(|e| {
                eprintln!("bad degree: {e}");
                std::process::exit(2);
            });
            let acc = CryptoPim::new(&params)
                .expect("paper parameters")
                .with_threads(parse_threads(&args));
            let sw = NttMultiplier::new(&params).expect("paper parameters");
            let a = Polynomial::from_coeffs(
                (0..n as u64).map(|i| i * 31 % params.q).collect(),
                params.q,
            )
            .expect("valid degree");
            let b = Polynomial::from_coeffs(
                (0..n as u64).map(|i| (i * 17 + 5) % params.q).collect(),
                params.q,
            )
            .expect("valid degree");
            let ok = acc.multiply(&a, &b).expect("pim") == sw.multiply(&a, &b).expect("sw");
            println!(
                "n = {n}: PIM datapath vs software NTT: {}",
                if ok { "OK" } else { "MISMATCH" }
            );
            if !ok {
                std::process::exit(1);
            }
        }
        "montecarlo" => {
            let samples = opt(&args, "--samples")
                .map(|v| v.parse().expect("numeric --samples"))
                .unwrap_or(5000);
            let variation = opt(&args, "--variation")
                .map(|v| v.parse::<f64>().expect("numeric --variation") / 100.0)
                .unwrap_or(0.10);
            let r = run_monte_carlo(
                &DeviceParams::nominal(),
                &MonteCarloConfig {
                    samples,
                    variation,
                    ..MonteCarloConfig::default()
                },
            );
            println!(
                "{samples} samples at {:.0} % variation: max margin reduction {:.1} %, {} failures",
                variation * 100.0,
                r.max_margin_reduction * 100.0,
                r.failures
            );
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(&str, f64)]) -> Vec<(String, f64)> {
        entries
            .iter()
            .map(|(id, ns)| (id.to_string(), *ns))
            .collect()
    }

    #[test]
    fn parse_bench_json_extracts_pairs() {
        let text = r#"{
          "benches": [
            { "id": "ntt_1024", "ns_per_op": 1234.5 },
            { "id": "mult_256", "ns_per_op": 99 }
          ]
        }"#;
        assert_eq!(
            parse_bench_json(text),
            snap(&[("ntt_1024", 1234.5), ("mult_256", 99.0)])
        );
    }

    #[test]
    fn parse_bench_json_tolerates_truncation_and_noise() {
        // Truncated mid-entry: the complete entry still parses.
        let text = r#""id": "a", "ns_per_op": 10.0, "id": "b", "ns_per"#;
        assert_eq!(parse_bench_json(text), snap(&[("a", 10.0)]));
        // No entries at all.
        assert!(parse_bench_json("{}").is_empty());
        // Unparseable number is dropped, later entries survive.
        let text = r#""id": "a", "ns_per_op": oops, "id": "b", "ns_per_op": 7"#;
        assert_eq!(parse_bench_json(text), snap(&[("b", 7.0)]));
    }

    #[test]
    fn compare_skips_zero_and_nonfinite_baselines() {
        let old = snap(&[("zeroed", 0.0), ("nan", f64::NAN), ("ok", 100.0)]);
        let new = snap(&[("zeroed", 50.0), ("nan", 50.0), ("ok", 105.0)]);
        let out = compare_snapshots(&old, &new);
        assert_eq!(out.compared, 1);
        assert_eq!(out.warnings.len(), 2);
        assert!(out.warnings.iter().any(|w| w.contains("zeroed")));
        assert!(out.warnings.iter().any(|w| w.contains("nan")));
        let (worst, id) = out.worst.expect("one comparable benchmark");
        assert_eq!(id, "ok");
        assert!((worst - 5.0).abs() < 1e-9);
    }

    #[test]
    fn compare_reports_one_sided_benchmarks() {
        let old = snap(&[("gone_bench", 10.0), ("shared", 10.0)]);
        let new = snap(&[("shared", 10.0), ("new_bench", 20.0)]);
        let out = compare_snapshots(&old, &new);
        assert_eq!(out.compared, 1);
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("new_bench") && l.contains("new")));
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("gone_bench") && l.contains("gone")));
    }

    #[test]
    fn compare_with_no_overlap_counts_zero() {
        let old = snap(&[("a", 10.0)]);
        let new = snap(&[("b", 20.0)]);
        let out = compare_snapshots(&old, &new);
        assert_eq!(out.compared, 0);
        assert!(out.worst.is_none());
        assert_eq!(out.lines.len(), 2); // one "new" + one "gone" row
    }

    #[test]
    fn compare_flags_worst_regression() {
        let old = snap(&[("fast", 100.0), ("slow", 100.0)]);
        let new = snap(&[("fast", 90.0), ("slow", 130.0)]);
        let out = compare_snapshots(&old, &new);
        assert_eq!(out.compared, 2);
        let (pct, id) = out.worst.expect("comparable benchmarks");
        assert_eq!(id, "slow");
        assert!(pct > REGRESSION_LIMIT_PCT);
    }
}

//! `cli` — command-line driver for the CryptoPIM simulator.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin cli -- simulate --degree 1024
//! cargo run -p cryptopim-bench --bin cli -- simulate --degree 4096 --org naive
//! cargo run -p cryptopim-bench --bin cli -- baseline --design bp2
//! cargo run -p cryptopim-bench --bin cli -- verify --degree 512
//! cargo run -p cryptopim-bench --bin cli -- montecarlo --samples 2000 --variation 15
//! ```

use baselines::bp::PimDesign;
use cryptopim::accelerator::CryptoPim;
use cryptopim::pipeline::Organization;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use pim::block::MultiplierKind;
use pim::device::DeviceParams;
use pim::reduce::ReductionStyle;
use pim::variation::{run_monte_carlo, MonteCarloConfig};

fn usage() -> ! {
    eprintln!(
        "usage: cli <command> [options]\n\
         \n\
         commands:\n\
         \x20 simulate    --degree N [--org cryptopim|naive|area]   performance report\n\
         \x20 baseline    --design bp1|bp2|bp3|cryptopim [--degree N] Fig.6 design point\n\
         \x20 verify      [--degree N]                                functional check vs software NTT\n\
         \x20 montecarlo  [--samples N] [--variation PCT]             device robustness study\n"
    );
    std::process::exit(2);
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_degree(args: &[String], default: usize) -> usize {
    match opt(args, "--degree") {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid --degree: {v}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    match command.as_str() {
        "simulate" => {
            let n = parse_degree(&args, 1024);
            let org = match opt(&args, "--org").as_deref() {
                None | Some("cryptopim") => Organization::CryptoPim,
                Some("naive") => Organization::Naive,
                Some("area") => Organization::AreaEfficient,
                Some(other) => {
                    eprintln!("unknown organization: {other}");
                    std::process::exit(2);
                }
            };
            let params = ParamSet::for_degree(n).unwrap_or_else(|e| {
                eprintln!("bad degree: {e}");
                std::process::exit(2);
            });
            let acc = CryptoPim::with_configuration(
                &params,
                org,
                MultiplierKind::CryptoPim,
                ReductionStyle::CryptoPim,
            )
            .expect("paper parameters");
            println!("{}", acc.report().expect("report"));
        }
        "baseline" => {
            let n = parse_degree(&args, 1024);
            let design = match opt(&args, "--design").as_deref() {
                Some("bp1") => PimDesign::Bp1,
                Some("bp2") => PimDesign::Bp2,
                Some("bp3") => PimDesign::Bp3,
                None | Some("cryptopim") => PimDesign::CryptoPim,
                Some(other) => {
                    eprintln!("unknown design: {other}");
                    std::process::exit(2);
                }
            };
            let params = ParamSet::for_degree(n).unwrap_or_else(|e| {
                eprintln!("bad degree: {e}");
                std::process::exit(2);
            });
            let latency = design.latency_us(&params).expect("paper parameters");
            println!(
                "{design} at n = {n}: non-pipelined latency {latency:.2} µs \
                 (multiplier: {:?}, reduction: {:?})",
                design.multiplier(),
                design.reduction()
            );
        }
        "verify" => {
            let n = parse_degree(&args, 1024);
            let params = ParamSet::for_degree(n).unwrap_or_else(|e| {
                eprintln!("bad degree: {e}");
                std::process::exit(2);
            });
            let acc = CryptoPim::new(&params).expect("paper parameters");
            let sw = NttMultiplier::new(&params).expect("paper parameters");
            let a = Polynomial::from_coeffs(
                (0..n as u64).map(|i| i * 31 % params.q).collect(),
                params.q,
            )
            .expect("valid degree");
            let b = Polynomial::from_coeffs(
                (0..n as u64).map(|i| (i * 17 + 5) % params.q).collect(),
                params.q,
            )
            .expect("valid degree");
            let ok = acc.multiply(&a, &b).expect("pim") == sw.multiply(&a, &b).expect("sw");
            println!(
                "n = {n}: PIM datapath vs software NTT: {}",
                if ok { "OK" } else { "MISMATCH" }
            );
            if !ok {
                std::process::exit(1);
            }
        }
        "montecarlo" => {
            let samples = opt(&args, "--samples")
                .map(|v| v.parse().expect("numeric --samples"))
                .unwrap_or(5000);
            let variation = opt(&args, "--variation")
                .map(|v| v.parse::<f64>().expect("numeric --variation") / 100.0)
                .unwrap_or(0.10);
            let r = run_monte_carlo(
                &DeviceParams::nominal(),
                &MonteCarloConfig {
                    samples,
                    variation,
                    ..MonteCarloConfig::default()
                },
            );
            println!(
                "{samples} samples at {:.0} % variation: max margin reduction {:.1} %, {} failures",
                variation * 100.0,
                r.max_margin_reduction * 100.0,
                r.failures
            );
        }
        _ => usage(),
    }
}

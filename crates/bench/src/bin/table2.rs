//! Regenerates **Table II**: CryptoPIM (pipelined) vs the gem5/X86 CPU
//! and the FPGA implementation of \[19\], in latency, energy, and
//! throughput, for every paper degree.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin table2
//! ```

use baselines::{cpu, fpga};
use cryptopim::accelerator::CryptoPim;
use cryptopim_bench::{header, times, versus};
use modmath::params::ParamSet;

fn main() {
    // Paper values for the CryptoPIM rows (for side-by-side deviation).
    let paper_rows = [
        (256usize, 68.67, 2.58, 553311.0),
        (512, 75.90, 5.02, 553311.0),
        (1024, 83.12, 11.04, 553311.0),
        (2048, 363.60, 82.57, 137511.0),
        (4096, 392.69, 178.62, 137511.0),
        (8192, 421.78, 384.17, 137511.0),
        (16384, 450.87, 822.21, 137511.0),
        (32768, 479.95, 1752.15, 137511.0),
    ];

    header("Table II — X86 (gem5) reference rows (paper data + fitted model)");
    println!(
        "{:<8} {:>6} {:>44} {:>44}",
        "n", "bits", "latency µs", "energy µJ"
    );
    let model = cpu::CpuModel::fitted();
    for row in cpu::paper_reference() {
        let p = ParamSet::for_degree(row.n).expect("paper degree");
        println!(
            "{:<8} {:>6} {:>44} {:>44}",
            row.n,
            row.bitwidth,
            versus(model.latency_us(&p), Some(row.latency_us)),
            versus(model.energy_uj(&p), Some(row.energy_uj)),
        );
    }

    header("Table II — FPGA [19] reference rows (published data)");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "n", "latency µs", "energy µJ", "mult/s"
    );
    for row in fpga::paper_reference() {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.0}",
            row.n, row.latency_us, row.energy_uj, row.throughput
        );
    }
    println!("{:<8} {:>12} {:>12} {:>12}", "2k-32k", "-", "-", "-");

    header("Table II — CryptoPIM pipelined (simulated vs paper)");
    println!(
        "{:<8} {:>6} {:>44} {:>44} {:>44}",
        "n", "bits", "latency µs", "energy µJ", "mult/s"
    );
    for (n, pl, pe, pt) in paper_rows {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let r = acc.report().expect("report");
        println!(
            "{:<8} {:>6} {:>44} {:>44} {:>44}",
            n,
            p.bitwidth,
            versus(r.pipelined.latency_us, Some(pl)),
            versus(r.pipelined.energy_uj, Some(pe)),
            versus(r.pipelined.throughput, Some(pt)),
        );
    }

    header("Headline comparisons");
    // vs CPU (paper: 7.6× perf, 111× throughput, 226× energy). The
    // paper's performance average spans all eight degrees, while its
    // throughput/energy averages cover the public-key (16-bit) rows —
    // the scopes that recover the printed numbers from Table II.
    let mut perf = Vec::new();
    let mut thr = Vec::new();
    let mut eng = Vec::new();
    for row in cpu::paper_reference() {
        let p = ParamSet::for_degree(row.n).expect("paper degree");
        let r = CryptoPim::new(&p)
            .expect("params")
            .report()
            .expect("report");
        perf.push(row.latency_us / r.pipelined.latency_us);
        if row.n <= 1024 {
            thr.push(r.pipelined.throughput / row.throughput);
            eng.push(row.energy_uj / r.pipelined.energy_uj);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "vs CPU   : performance {} (paper 7.6×, all n), throughput {} (paper 111×, n ≤ 1024), energy {} (paper 226×, n ≤ 1024)",
        times(avg(&perf)),
        times(avg(&thr)),
        times(avg(&eng))
    );

    // vs FPGA (paper: 31× throughput, same energy, 28 % perf reduction).
    let mut fthr = Vec::new();
    let mut fperf = Vec::new();
    let mut feng = Vec::new();
    for n in [256usize, 512, 1024] {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let r = CryptoPim::new(&p)
            .expect("params")
            .report()
            .expect("report");
        let c = fpga::compare(
            n,
            r.pipelined.latency_us,
            r.pipelined.energy_uj,
            r.pipelined.throughput,
        )
        .expect("published FPGA row");
        fthr.push(c.throughput_gain);
        fperf.push(c.performance_ratio);
        feng.push(c.energy_ratio);
    }
    println!(
        "vs FPGA  : throughput {} (paper 31×), performance ratio {:.2} (paper 0.72 = 28 % reduction), energy ratio {:.2} (paper ≈ 1)",
        times(avg(&fthr)),
        avg(&fperf),
        avg(&feng)
    );
}

//! Regenerates **Figure 4**: stage-by-stage breakdown of the three
//! pipeline organizations (area-efficient, naive, CryptoPIM) — stage
//! latency, depth, and blocks per bank, for the 16-bit n = 256 design
//! the paper plots plus the 32-bit class.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin fig4
//! ```

use cryptopim::pipeline::{Organization, PipelineModel};
use cryptopim_bench::{header, versus};
use modmath::params::ParamSet;

fn main() {
    let paper_stage_256 = |org: Organization| -> Option<f64> {
        Some(match org {
            Organization::AreaEfficient => 2700.0,
            Organization::Naive => 1756.0,
            Organization::CryptoPim => 1643.0,
        })
    };

    for n in [256usize, 2048] {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let model = PipelineModel::for_params(&p).expect("paper parameters");
        header(&format!(
            "Fig. 4 — pipeline organizations at n = {n} ({}-bit, q = {})",
            p.bitwidth, p.q
        ));
        println!(
            "{:<16} {:>44} {:>8} {:>12}",
            "organization", "stage latency (cycles)", "depth", "blocks/bank"
        );
        for org in [
            Organization::AreaEfficient,
            Organization::Naive,
            Organization::CryptoPim,
        ] {
            let paper = if n == 256 { paper_stage_256(org) } else { None };
            println!(
                "{:<16} {:>44} {:>8} {:>12}",
                format!("{org}"),
                versus(model.stage_latency(org) as f64, paper),
                model.depth(org),
                model.blocks_per_bank(org),
            );
        }
    }

    header("Fig. 4 — CryptoPIM stage composition (16-bit)");
    println!(
        "sub(7N) + mul(6.5N²−11.5N+3) + transfer(3N) = {} + {} + {} = {} cycles",
        7 * 16,
        pim::cost::mul_cycles(16),
        3 * 16,
        7 * 16 + pim::cost::mul_cycles(16) + 3 * 16
    );
}

//! Functional verification sweep: runs a real multiplication through
//! the PIM datapath at every paper degree and checks it against the
//! software NTT (and schoolbook, where feasible). This is the
//! "cycle-accurate simulator emulates CryptoPIM functionality" claim of
//! §IV-A made executable.
//!
//! ```text
//! cargo run -p cryptopim-bench --bin verify
//! ```

use cryptopim::accelerator::CryptoPim;
use cryptopim_bench::header;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use ntt::schoolbook;

fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
    let mut state = seed;
    let coeffs: Vec<u64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect();
    Polynomial::from_coeffs(coeffs, q).expect("valid degree")
}

fn main() {
    header("Functional verification: PIM datapath vs software NTT");
    let mut all_ok = true;
    for n in modmath::params::PAPER_DEGREES {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let sw = NttMultiplier::new(&p).expect("paper parameters");
        let a = rand_poly(n, p.q, 2 * n as u64 + 1);
        let b = rand_poly(n, p.q, 2 * n as u64 + 2);
        let via_pim = acc.multiply(&a, &b).expect("pim multiply");
        let via_sw = sw.multiply(&a, &b).expect("sw multiply");
        let ntt_ok = via_pim == via_sw;
        let school_ok = if n <= 512 {
            match schoolbook::multiply(&a, &b) {
                Ok(expect) => {
                    if via_pim == expect {
                        Some(true)
                    } else {
                        Some(false)
                    }
                }
                Err(_) => None,
            }
        } else {
            None
        };
        all_ok &= ntt_ok && school_ok != Some(false);
        println!(
            "n = {:<6} q = {:<7} {}-bit : vs NTT {}  vs schoolbook {}",
            n,
            p.q,
            p.bitwidth,
            if ntt_ok { "OK" } else { "MISMATCH" },
            match school_ok {
                Some(true) => "OK",
                Some(false) => "MISMATCH",
                None => "(skipped, O(n²))",
            }
        );
    }
    if all_ok {
        println!("\nall degrees verified ✓");
    } else {
        println!("\nVERIFICATION FAILED");
        std::process::exit(1);
    }
}

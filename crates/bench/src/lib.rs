//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index); this library provides the
//! common formatting so their outputs line up with the published
//! artifacts.

/// Formats a comparison cell: measured value plus deviation from the
/// paper's value when one exists.
pub fn versus(measured: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) if p != 0.0 => {
            let dev = (measured - p) / p * 100.0;
            format!("{measured:>10.2} (paper {p:>10.2}, {dev:+.1} %)")
        }
        _ => format!("{measured:>10.2} (paper      n/a)"),
    }
}

/// Prints a section header in a consistent style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a ratio like `12.70×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versus_with_reference() {
        let s = versus(110.0, Some(100.0));
        assert!(s.contains("+10.0 %"));
        assert!(s.contains("110.00"));
    }

    #[test]
    fn versus_without_reference() {
        assert!(versus(5.0, None).contains("n/a"));
        assert!(versus(5.0, Some(0.0)).contains("n/a"));
    }

    #[test]
    fn times_formats() {
        assert_eq!(times(12.7), "12.70×");
    }
}

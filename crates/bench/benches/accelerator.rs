//! Criterion benchmarks of the PIM simulator itself: how fast the
//! functional engine executes accelerated multiplications (host-side
//! simulation throughput, not modeled hardware time), plus the analytic
//! report path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use ntt::poly::Polynomial;

fn poly(n: usize, q: u64, seed: u64) -> Polynomial {
    let mut state = seed;
    let coeffs: Vec<u64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect();
    Polynomial::from_coeffs(coeffs, q).expect("valid degree")
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("pim_engine_multiply");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let a = poly(n, p.q, 1);
        let b = poly(n, p.q, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                acc.multiply_with_report(std::hint::black_box(&a), std::hint::black_box(&b))
                    .expect("multiply")
            });
        });
    }
    group.finish();
}

fn bench_report(c: &mut Criterion) {
    c.bench_function("analytic_report_32k", |b| {
        let p = ParamSet::for_degree(32768).expect("paper degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        b.iter(|| acc.report().expect("report"));
    });
}

criterion_group!(benches, bench_engine, bench_report);
criterion_main!(benches);

//! Criterion benchmarks of the software NTT layer (the CPU-baseline
//! kernels of Table II): forward transform and full negacyclic
//! multiplication across the paper's degrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;

fn poly(n: usize, q: u64, seed: u64) -> Polynomial {
    let mut state = seed;
    let coeffs: Vec<u64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect();
    Polynomial::from_coeffs(coeffs, q).expect("valid degree")
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_forward");
    for n in [256usize, 1024, 4096, 32768] {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let mult = NttMultiplier::new(&p).expect("paper parameters");
        let a = poly(n, p.q, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mult.forward(std::hint::black_box(&a)).expect("forward"));
        });
    }
    group.finish();
}

fn bench_multiply(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly_multiply");
    group.sample_size(20);
    for n in [256usize, 1024, 4096, 32768] {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let mult = NttMultiplier::new(&p).expect("paper parameters");
        let a = poly(n, p.q, 1);
        let b = poly(n, p.q, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                mult.multiply(std::hint::black_box(&a), std::hint::black_box(&b))
                    .expect("multiply")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_multiply);
criterion_main!(benches);

//! Criterion benchmarks of the word-level reduction kernels: the
//! paper's shift-add Barrett/Montgomery sequences (Algorithm 3) against
//! the generic algorithms and plain `%`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use modmath::barrett::{shift_add_reduce, BarrettReducer};
use modmath::montgomery::{paper_r_exponent, shift_add_redc, MontgomeryReducer};

fn inputs(q: u64, count: usize, max: u64) -> Vec<u64> {
    let mut state = q;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % max
        })
        .collect()
}

fn bench_barrett(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrett");
    for q in [7681u64, 12289, 786433] {
        let data = inputs(q, 1024, 2 * q);
        group.bench_with_input(BenchmarkId::new("shift_add", q), &q, |b, &q| {
            b.iter(|| {
                data.iter()
                    .map(|&a| shift_add_reduce(a, q).expect("specialized"))
                    .sum::<u64>()
            });
        });
        let red = BarrettReducer::new(q).expect("modulus in range");
        group.bench_with_input(BenchmarkId::new("generic", q), &q, |b, _| {
            b.iter(|| data.iter().map(|&a| red.reduce(a)).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("modulo_op", q), &q, |b, &q| {
            b.iter(|| data.iter().map(|&a| a % q).sum::<u64>());
        });
    }
    group.finish();
}

fn bench_montgomery(c: &mut Criterion) {
    let mut group = c.benchmark_group("montgomery");
    for q in [7681u64, 12289, 786433] {
        let k = paper_r_exponent(q).expect("specialized");
        let data = inputs(q, 1024, q * q);
        group.bench_with_input(BenchmarkId::new("shift_add", q), &q, |b, &q| {
            b.iter(|| {
                data.iter()
                    .map(|&a| shift_add_redc(a, q).expect("specialized"))
                    .sum::<u64>()
            });
        });
        let red = MontgomeryReducer::with_r_exponent(q, k).expect("valid radix");
        group.bench_with_input(BenchmarkId::new("generic", q), &q, |b, _| {
            b.iter(|| data.iter().map(|&a| red.redc(a)).sum::<u64>());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_barrett, bench_montgomery);
criterion_main!(benches);

//! Karatsuba negacyclic multiplication — the classical sub-quadratic
//! algorithm between schoolbook and NTT.
//!
//! The paper's CPU baseline uses an NTT; real libraries pick per-size:
//! schoolbook below ~32 coefficients, Karatsuba in the middle, NTT once
//! `n log n` wins. This module supplies the middle point so the
//! software-side crossover can be measured (see the `algorithms` bench
//! binary), and doubles as yet another independent correctness oracle.

use crate::poly::Polynomial;
use crate::Result;
use modmath::{zq, Error};

/// Length at which recursion falls back to schoolbook.
const THRESHOLD: usize = 32;

/// Multiplies two polynomials in `Z_q[x]/(x^n + 1)` via Karatsuba over
/// the integers followed by a negacyclic fold.
///
/// # Errors
///
/// Returns [`Error::InvalidDegree`] when operand lengths differ.
///
/// # Example
///
/// ```
/// use ntt::karatsuba;
/// use ntt::poly::Polynomial;
///
/// # fn main() -> Result<(), ntt::Error> {
/// let a = Polynomial::from_coeffs(vec![1, 1, 0, 0], 17)?;
/// let sq = karatsuba::multiply(&a, &a)?;
/// assert_eq!(sq.coeffs(), &[1, 2, 1, 0]);
/// # Ok(())
/// # }
/// ```
pub fn multiply(a: &Polynomial, b: &Polynomial) -> Result<Polynomial> {
    if a.degree_bound() != b.degree_bound() {
        return Err(Error::InvalidDegree {
            n: b.degree_bound(),
        });
    }
    assert_eq!(a.modulus(), b.modulus(), "mismatched moduli");
    let n = a.degree_bound();
    let q = a.modulus();

    // Integer product (length 2n − 1), accumulated in u128: with
    // q < 2^20 and n ≤ 2^15 the largest coefficient is far below 2^56.
    let prod = karatsuba_rec(a.coeffs(), b.coeffs());

    // Negacyclic fold: x^{n+k} ≡ −x^k.
    let mut out = vec![0u64; n];
    for (k, &c) in prod.iter().enumerate() {
        let c = (c % q as u128) as u64;
        if k < n {
            out[k] = zq::add(out[k], c, q);
        } else {
            out[k - n] = zq::sub(out[k - n], c, q);
        }
    }
    Polynomial::from_coeffs(out, q)
}

/// Plain (acyclic) integer product of two equal-length slices,
/// length `2·len − 1`.
fn karatsuba_rec(a: &[u64], b: &[u64]) -> Vec<u128> {
    let n = a.len();
    if n <= THRESHOLD || !n.is_multiple_of(2) {
        let mut out = vec![0u128; 2 * n - 1];
        for i in 0..n {
            if a[i] == 0 {
                continue;
            }
            for j in 0..n {
                out[i + j] += a[i] as u128 * b[j] as u128;
            }
        }
        return out;
    }
    let half = n / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);

    let p0 = karatsuba_rec(a0, b0);
    let p2 = karatsuba_rec(a1, b1);
    // (a0 + a1)(b0 + b1)
    let asum: Vec<u64> = a0.iter().zip(a1).map(|(&x, &y)| x + y).collect();
    let bsum: Vec<u64> = b0.iter().zip(b1).map(|(&x, &y)| x + y).collect();
    let pm = karatsuba_rec(&asum, &bsum);

    // Middle term: pm − p0 − p2 (non-negative by construction).
    let mut out = vec![0u128; 2 * n - 1];
    for (i, &c) in p0.iter().enumerate() {
        out[i] += c;
    }
    for (i, &c) in p2.iter().enumerate() {
        out[i + n] += c;
    }
    for i in 0..pm.len() {
        let mid = pm[i] - p0.get(i).copied().unwrap_or(0) - p2.get(i).copied().unwrap_or(0);
        out[i + half] += mid;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negacyclic::{NttMultiplier, PolyMultiplier};
    use crate::schoolbook;
    use modmath::params::ParamSet;
    use proptest::prelude::*;

    fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
        let mut state = seed;
        let coeffs: Vec<u64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect();
        Polynomial::from_coeffs(coeffs, q).unwrap()
    }

    #[test]
    fn matches_schoolbook_across_sizes() {
        // Exercises the base case, one recursion level, and deeper.
        for n in [4usize, 16, 32, 64, 128, 256] {
            let q = 7681;
            let a = rand_poly(n, q, 1);
            let b = rand_poly(n, q, 2);
            assert_eq!(
                multiply(&a, &b).unwrap(),
                schoolbook::multiply(&a, &b).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn matches_ntt_at_paper_sizes() {
        for n in [256usize, 1024] {
            let p = ParamSet::for_degree(n).unwrap();
            let m = NttMultiplier::new(&p).unwrap();
            let a = rand_poly(n, p.q, 3);
            let b = rand_poly(n, p.q, 4);
            assert_eq!(
                multiply(&a, &b).unwrap(),
                m.multiply(&a, &b).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn worst_case_coefficients_no_overflow() {
        // All-max coefficients at the largest modulus and a big degree:
        // the u128 accumulator must not wrap.
        let q = 786433;
        let n = 2048;
        let a = Polynomial::from_coeffs(vec![q - 1; n], q).unwrap();
        let got = multiply(&a, &a).unwrap();
        let expect = NttMultiplier::for_degree_modulus(n, q)
            .unwrap()
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = rand_poly(32, 7681, 1);
        let b = rand_poly(64, 7681, 2);
        assert!(multiply(&a, &b).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn prop_matches_schoolbook(
            a in proptest::collection::vec(0u64..12289, 64),
            b in proptest::collection::vec(0u64..12289, 64),
        ) {
            let pa = Polynomial::from_coeffs(a, 12289).unwrap();
            let pb = Polynomial::from_coeffs(b, 12289).unwrap();
            prop_assert_eq!(
                multiply(&pa, &pb).unwrap(),
                schoolbook::multiply(&pa, &pb).unwrap()
            );
        }
    }
}

//! O(n²) DFT-by-definition oracle.
//!
//! `A_k = Σ_i a_i · ω^{ik} (mod q)` computed literally. Used only in
//! tests and cross-checks — it is the ground truth every fast transform
//! in this workspace is compared against.

use modmath::zq;

/// Computes the length-`n` cyclic DFT of `a` over `Z_q` by definition.
///
/// `omega` must be a primitive `n`-th root of unity modulo `q`; the
/// output is in natural order.
///
/// # Panics
///
/// Panics if `a` is empty.
pub fn dft(a: &[u64], omega: u64, q: u64) -> Vec<u64> {
    assert!(!a.is_empty());
    let n = a.len();
    let mut out = vec![0u64; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let wk = zq::pow(omega, k as u64, q);
        let mut acc = 0u64;
        let mut wki = 1u64; // ω^{k·i}
        for &ai in a {
            acc = zq::add(acc, zq::mul(ai % q, wki, q), q);
            wki = zq::mul(wki, wk, q);
        }
        *slot = acc;
    }
    out
}

/// Computes the inverse DFT by definition (including the `n⁻¹` scaling).
///
/// # Panics
///
/// Panics if `a` is empty or `n` is not invertible modulo `q`.
pub fn idft(a: &[u64], omega: u64, q: u64) -> Vec<u64> {
    let n = a.len() as u64;
    let omega_inv = zq::inv(omega, q).expect("omega must be invertible");
    let n_inv = zq::inv(n % q, q).expect("n must be invertible mod q");
    dft(a, omega_inv, q)
        .into_iter()
        .map(|c| zq::mul(c, n_inv, q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::roots;

    #[test]
    fn dft_of_delta_is_all_ones() {
        let q = 12289;
        let n = 8;
        let w = roots::primitive_root_of_unity(n as u64, q).unwrap();
        let mut a = vec![0u64; n];
        a[0] = 1;
        assert_eq!(dft(&a, w, q), vec![1; n]);
    }

    #[test]
    fn dft_of_constant_is_scaled_delta() {
        let q = 12289;
        let n = 8;
        let w = roots::primitive_root_of_unity(n as u64, q).unwrap();
        let a = vec![3u64; n];
        let spec = dft(&a, w, q);
        assert_eq!(spec[0], 3 * n as u64 % q);
        assert!(spec[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn idft_inverts_dft() {
        let q = 7681;
        let n = 16;
        let w = roots::primitive_root_of_unity(n as u64, q).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 1) % q).collect();
        assert_eq!(idft(&dft(&a, w, q), w, q), a);
    }

    #[test]
    fn dft_is_linear() {
        let q = 7681;
        let n = 16;
        let w = roots::primitive_root_of_unity(n as u64, q).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (7 * i + 3) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * i) % q).collect();
        let sum: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| modmath::zq::add(x, y, q))
            .collect();
        let fa = dft(&a, w, q);
        let fb = dft(&b, w, q);
        let fsum = dft(&sum, w, q);
        for k in 0..n {
            assert_eq!(fsum[k], modmath::zq::add(fa[k], fb[k], q));
        }
    }
}

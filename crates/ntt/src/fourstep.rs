//! Four-step (segmented) NTT for large degrees, with cache-blocked
//! transposes.
//!
//! At `n ≥ 16384` a polynomial no longer fits in L1/L2, and the early
//! radix stages of an in-place transform stride across the whole
//! buffer, missing cache on every butterfly. The classic four-step
//! decomposition (Bailey) turns one size-`n` transform into cache-sized
//! pieces: with `n = n1·n2` and `j = j1 + n1·j2`, `k = k2 + n2·k1`,
//!
//! ```text
//! X[k2 + n2·k1] = Σ_{j1} ω1^{j1·k1} · ( ω^{j1·k2} · Σ_{j2} a[j1 + n1·j2] · ω2^{j2·k2} )
//! ```
//!
//! where `ω1 = ω^{n2}` (order `n1`) and `ω2 = ω^{n1}` (order `n2`) are
//! *derived from the same big root* — that is what keeps the result
//! exactly the size-`n` transform, hence bit-identical canonical
//! outputs. The five passes:
//!
//! 1. transpose the `n2 × n1` view into `n1` contiguous rows of `n2`,
//! 2. a size-`n2` NTT on each row (in cache),
//! 3. the `ω^{j1·k2}` twiddle correction (one lazy multiply/element;
//!    `j1·k2 < n`, so the exponent indexes a flat `ω^i` table directly,
//!    no reduction),
//! 4. transpose to `n2` contiguous rows of `n1`,
//! 5. a size-`n1` NTT on each row, and a final transpose back to
//!    natural order.
//!
//! Transposes are tiled ([`TILE`]`×`[`TILE`]) so both the read and the
//! write side of every tile stay resident — the straightforward loop
//! would miss on one side for every element.
//!
//! The negacyclic wrapper scales by `φ` / `φ̄·n⁻¹` in natural order
//! (tables already carried by [`NttTables`]), so the segmented multiply
//! composes exactly like Algorithm 1 and produces bit-identical
//! products to the merged-kernel path.

use crate::gs;
use modmath::roots::NttTables;
use modmath::{barrett, bitrev, shoup, zq};

use crate::Result;

/// Tile edge for the blocked transpose. 32×32 `u64` tiles are two 8KiB
/// panels — comfortably L1-resident on anything current.
const TILE: usize = 32;

/// Degree at which the segmented path becomes *available* through
/// [`crate::negacyclic::NttMultiplier::multiply_segmented`].
///
/// Measured on the reference host (AVX-512, 1.25 MiB L2): the merged
/// in-place kernels beat the four-step form at every paper degree up to
/// 65536 (≈ 1.9 ms vs ≈ 5.5 ms for a 65536 multiply), because a 512 KiB
/// operand still lives in L2 — the three transposes cost more than the
/// cache misses they avoid. The default multiply therefore stays on the
/// merged path; this constant gates where the explicit segmented entry
/// point engages for hosts (or future degrees) past their cache cliff.
pub const FOUR_STEP_MIN_DEGREE: usize = 16384;

/// Cache-blocked out-of-place transpose: `dst[c·rows + r] = src[r·cols + c]`.
///
/// # Panics
///
/// Panics if `src` and `dst` are not both `rows·cols` long.
pub fn transpose_blocked(src: &[u64], dst: &mut [u64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "source shape mismatch");
    assert_eq!(dst.len(), rows * cols, "destination shape mismatch");
    for r0 in (0..rows).step_by(TILE) {
        let r1 = (r0 + TILE).min(rows);
        for c0 in (0..cols).step_by(TILE) {
            let c1 = (c0 + TILE).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Precomputed plan for a four-step transform of degree `n = n1 · n2`.
///
/// Holds the flat `ω^i` power table (with Shoup companions) that serves
/// the twiddle-correction pass *and*, strided, the two sub-transform
/// twiddle sets, plus the natural-order sub-twiddles the row kernels
/// walk.
#[derive(Debug, Clone)]
pub struct FourStepPlan {
    n1: usize,
    n2: usize,
    q: u64,
    /// `ω^i` for `i ∈ [0, n)`, canonical (twiddle-correction pass).
    omega_table: Vec<u64>,
    omega_table_shoup: Vec<u64>,
    /// `ω2 = ω^{n1}` powers in the GS kernel's bit-reversed layout
    /// (`table[rev(j)] = ω2^j`, `n2/2` entries) — row transforms ride
    /// [`crate::gs::gs_kernel_lazy_batch`] and its SIMD dispatch.
    omega2_bitrev: Vec<u64>,
    omega2_bitrev_shoup: Vec<u64>,
    /// `ω1 = ω^{n2}` powers, same layout, `n1/2` entries.
    omega1_bitrev: Vec<u64>,
    omega1_bitrev_shoup: Vec<u64>,
    /// Same four sets for the inverse direction (`ω → ω⁻¹`).
    omega_inv_table: Vec<u64>,
    omega_inv_table_shoup: Vec<u64>,
    omega2_inv_bitrev: Vec<u64>,
    omega2_inv_bitrev_shoup: Vec<u64>,
    omega1_inv_bitrev: Vec<u64>,
    omega1_inv_bitrev_shoup: Vec<u64>,
}

/// Splits `n` into `n1 · n2` with `n1 ≥ n2`, both powers of two, as
/// square as possible (`n1/n2 ∈ {1, 2}`).
fn split(n: usize) -> (usize, usize) {
    let log_n = n.trailing_zeros();
    let log_n2 = (log_n / 2) as usize;
    (n >> log_n2, 1 << log_n2)
}

impl FourStepPlan {
    /// Builds the plan from the multiplier's tables (same `ω`, hence
    /// bit-identical transforms).
    ///
    /// # Errors
    ///
    /// Returns [`modmath::Error::InvalidDegree`] when the degree is too
    /// small to split (below 4).
    pub fn new(tables: &NttTables) -> Result<Self> {
        let n = tables.degree();
        if n < 4 {
            return Err(modmath::Error::InvalidDegree { n });
        }
        let (n1, n2) = split(n);
        let q = tables.modulus();
        let omega = tables.omega();
        let omega_inv = zq::inv(omega, q).expect("omega invertible");

        let power_table = |base: u64| -> Vec<u64> {
            let mut t = Vec::with_capacity(n);
            let mut acc = 1u64;
            for _ in 0..n {
                t.push(acc);
                acc = zq::mul(acc, base, q);
            }
            t
        };
        let omega_table = power_table(omega);
        let omega_inv_table = power_table(omega_inv);

        // Sub-root powers in the GS kernel's bit-reversed layout
        // (`table[rev(j)] = base^j`), matching `NttTables`'
        // `omega_powers` convention so the batch kernel reads
        // block-constant twiddles.
        let bitrev_powers = |t: &[u64], stride: usize, len: usize| -> Vec<u64> {
            let bits = bitrev::log2_exact(len).map_or(0, |b| b);
            let mut out = vec![0u64; len.max(1)];
            for j in 0..len.max(1) {
                let slot = if len > 1 {
                    bitrev::reverse_bits(j, bits)
                } else {
                    0
                };
                out[slot] = t[j * stride];
            }
            out
        };
        let omega2_bitrev = bitrev_powers(&omega_table, n1, n2 / 2);
        let omega1_bitrev = bitrev_powers(&omega_table, n2, n1 / 2);
        let omega2_inv_bitrev = bitrev_powers(&omega_inv_table, n1, n2 / 2);
        let omega1_inv_bitrev = bitrev_powers(&omega_inv_table, n2, n1 / 2);

        Ok(FourStepPlan {
            n1,
            n2,
            q,
            omega_table_shoup: shoup::precompute_table(&omega_table, q),
            omega2_bitrev_shoup: shoup::precompute_table(&omega2_bitrev, q),
            omega1_bitrev_shoup: shoup::precompute_table(&omega1_bitrev, q),
            omega_inv_table_shoup: shoup::precompute_table(&omega_inv_table, q),
            omega2_inv_bitrev_shoup: shoup::precompute_table(&omega2_inv_bitrev, q),
            omega1_inv_bitrev_shoup: shoup::precompute_table(&omega1_inv_bitrev, q),
            omega_table,
            omega2_bitrev,
            omega1_bitrev,
            omega_inv_table,
            omega2_inv_bitrev,
            omega1_inv_bitrev,
        })
    }

    /// The transform degree this plan serves.
    pub fn degree(&self) -> usize {
        self.n1 * self.n2
    }

    /// The `(n1, n2)` split.
    pub fn shape(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Forward cyclic NTT, natural-order input and output, canonical in
    /// and out. `scratch` must be another `n`-length buffer.
    ///
    /// # Panics
    ///
    /// Panics if either buffer's length differs from the plan degree.
    pub fn forward(&self, data: &mut [u64], scratch: &mut [u64]) {
        self.run(data, scratch, Dir::Forward);
    }

    /// Inverse cyclic NTT (including the `n⁻¹` scale), natural-order
    /// input and output, canonical in and out.
    ///
    /// # Panics
    ///
    /// Panics if either buffer's length differs from the plan degree.
    pub fn inverse(&self, data: &mut [u64], scratch: &mut [u64]) {
        self.run(data, scratch, Dir::Inverse);
        // n⁻¹ = n1⁻¹ · n2⁻¹; the row kernels are scale-free, so apply
        // the whole factor once.
        let n = self.degree() as u64;
        let n_inv = zq::inv(n % self.q, self.q).expect("n invertible");
        let n_inv_shoup = shoup::precompute(n_inv, self.q);
        for c in data.iter_mut() {
            *c = shoup::mul(*c, n_inv, n_inv_shoup, self.q);
        }
    }

    fn run(&self, data: &mut [u64], scratch: &mut [u64], dir: Dir) {
        let (n1, n2, q) = (self.n1, self.n2, self.q);
        let n = n1 * n2;
        assert_eq!(data.len(), n, "data length mismatch");
        assert_eq!(scratch.len(), n, "scratch length mismatch");
        let (table, table_shoup, w1, w1s, w2, w2s) = match dir {
            Dir::Forward => (
                &self.omega_table,
                &self.omega_table_shoup,
                &self.omega1_bitrev,
                &self.omega1_bitrev_shoup,
                &self.omega2_bitrev,
                &self.omega2_bitrev_shoup,
            ),
            Dir::Inverse => (
                &self.omega_inv_table,
                &self.omega_inv_table_shoup,
                &self.omega1_inv_bitrev,
                &self.omega1_inv_bitrev_shoup,
                &self.omega2_inv_bitrev,
                &self.omega2_inv_bitrev_shoup,
            ),
        };

        // Step 1: gather the decimated sequences — scratch row j1 holds
        // a[j1 + n1·j2] for j2 ∈ [0, n2). This is the transpose of the
        // n2 × n1 row-major view of `data`.
        transpose_blocked(data, scratch, n2, n1);

        // Step 2: size-n2 row transforms (batch GS kernel — one twiddle
        // walk per stage for all n1 rows, SIMD-dispatched); step 3:
        // twiddle-correct row j1 by ω^{j1·k2} via a running power.
        rows_transform(scratch, n2, w2, w2s, q);
        correct_rows(scratch, n2, table, table_shoup, q);

        // Step 4: transpose so each size-n1 transform is contiguous.
        transpose_blocked(scratch, data, n1, n2);

        // Step 5: size-n1 row transforms, then transpose back so that
        // X[k2 + n2·k1] lands at index k2 + n2·k1 (natural order).
        rows_transform(data, n1, w1, w1s, q);
        transpose_blocked(data, scratch, n2, n1);
        data.copy_from_slice(scratch);
    }
}

#[derive(Clone, Copy)]
enum Dir {
    Forward,
    Inverse,
}

/// Cyclic NTT of every `n_row`-length row: per-row bit-reversal (rows
/// are cache-resident) followed by the batch GS kernel — which walks
/// each stage's twiddles once for *all* rows and carries the half-width
/// SIMD dispatch — and a branch-free normalization.
fn rows_transform(data: &mut [u64], n_row: usize, w_bitrev: &[u64], ws: &[u64], q: u64) {
    for row in data.chunks_exact_mut(n_row) {
        bitrev::permute_in_place(row);
    }
    gs::gs_kernel_lazy_batch(data, n_row, w_bitrev, ws, q);
    for c in data.iter_mut() {
        let mask = ((*c >= q) as u64).wrapping_neg();
        *c -= q & mask;
    }
}

/// The four-step twiddle correction: row `j1` is scaled by `ω^{j1·k2}`
/// at column `k2`, computed as a running power of `ω^{j1}` (contiguous
/// table access) rather than a stride-`j1` gather through the `n`-entry
/// table, which would miss cache on every element for large `j1`.
fn correct_rows(data: &mut [u64], n_row: usize, table: &[u64], table_shoup: &[u64], q: u64) {
    let mu = barrett::precompute_mu(q);
    for (j1, row) in data.chunks_exact_mut(n_row).enumerate().skip(1) {
        let (base, base_shoup) = (table[j1], table_shoup[j1]);
        let mut acc = base;
        if q < 1 << 31 {
            // µ-Barrett: the running power needs no Shoup companion of
            // its own.
            for c in row.iter_mut().skip(1) {
                *c = shoup::reduce_2q(barrett::mul_lazy_mu(*c, acc, mu, q), q);
                acc = shoup::mul(acc, base, base_shoup, q);
            }
        } else {
            for c in row.iter_mut().skip(1) {
                *c = zq::mul(*c, acc, q);
                acc = shoup::mul(acc, base, base_shoup, q);
            }
        }
    }
}

/// Segmented negacyclic multiply: `φ`-scale, four-step forward on both
/// operands, pointwise, four-step inverse, fused `φ̄·n⁻¹` post-scale —
/// exactly Algorithm 1 with the transforms swapped for the cache-blocked
/// form, hence bit-identical products.
///
/// `a` and `b` are consumed as scratch; the product lands in `a`'s
/// buffer, returned canonically. `scratch` must be `n`-length.
///
/// # Errors
///
/// Returns [`modmath::Error::InvalidDegree`] on any length mismatch.
pub fn multiply_into(
    plan: &FourStepPlan,
    tables: &NttTables,
    a: &mut [u64],
    b: &mut [u64],
    scratch: &mut [u64],
) -> Result<()> {
    let n = plan.degree();
    if a.len() != n || b.len() != n || scratch.len() != n || tables.degree() != n {
        return Err(modmath::Error::InvalidDegree { n: a.len() });
    }
    let q = tables.modulus();
    let phi = tables.phi_powers();
    let phi_shoup = tables.phi_powers_shoup();
    for (x, (&p, &ps)) in a.iter_mut().zip(phi.iter().zip(phi_shoup)) {
        *x = shoup::mul(*x, p, ps, q);
    }
    for (x, (&p, &ps)) in b.iter_mut().zip(phi.iter().zip(phi_shoup)) {
        *x = shoup::mul(*x, p, ps, q);
    }
    plan.forward(a, scratch);
    plan.forward(b, scratch);
    if q < 1 << 31 {
        let mu = barrett::precompute_mu(q);
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x = shoup::reduce_2q(barrett::mul_lazy_mu(*x, y, mu, q), q);
        }
    } else {
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x = zq::mul(*x, y, q);
        }
    }
    // Scale-free inverse stages, then the fused φ^{-i}·n⁻¹ table — one
    // post-scale pass covers both factors, mirroring Algorithm 1.
    plan.run(a, scratch, Dir::Inverse);
    let fused = tables.phi_inv_n_inv_powers();
    let fused_shoup = tables.phi_inv_n_inv_powers_shoup();
    for (x, (&p, &ps)) in a.iter_mut().zip(fused.iter().zip(fused_shoup)) {
        *x = shoup::mul(*x, p, ps, q);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gs;

    fn tables(n: usize, q: u64) -> NttTables {
        NttTables::for_degree_modulus(n, q).unwrap()
    }

    #[test]
    fn blocked_transpose_round_trips() {
        for (rows, cols) in [(4usize, 8usize), (32, 32), (64, 16), (33, 7)] {
            let src: Vec<u64> = (0..rows as u64 * cols as u64).collect();
            let mut t = vec![0u64; src.len()];
            let mut back = vec![0u64; src.len()];
            transpose_blocked(&src, &mut t, rows, cols);
            transpose_blocked(&t, &mut back, cols, rows);
            assert_eq!(back, src, "{rows}x{cols}");
            // Spot-check the mapping itself.
            assert_eq!(t[rows], src[1], "{rows}x{cols}");
        }
    }

    #[test]
    fn split_is_square_ish() {
        assert_eq!(split(16384), (128, 128));
        assert_eq!(split(32768), (256, 128));
        assert_eq!(split(65536), (256, 256));
        assert_eq!(split(64), (8, 8));
    }

    #[test]
    fn forward_matches_direct_ntt() {
        for (n, q) in [(16usize, 7681u64), (64, 12289), (1024, 786433)] {
            let t = tables(n, q);
            let plan = FourStepPlan::new(&t).unwrap();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % q).collect();

            let mut via_four = a.clone();
            let mut scratch = vec![0u64; n];
            plan.forward(&mut via_four, &mut scratch);

            let mut direct = a.clone();
            gs::forward(&mut direct, &t);
            assert_eq!(via_four, direct, "n = {n}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let n = 256usize;
        let q = 786433u64;
        let t = tables(n, q);
        let plan = FourStepPlan::new(&t).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 97 + 3) % q).collect();
        let mut data = a.clone();
        let mut scratch = vec![0u64; n];
        plan.forward(&mut data, &mut scratch);
        plan.inverse(&mut data, &mut scratch);
        assert_eq!(data, a);
    }

    #[test]
    fn segmented_multiply_matches_merged_multiply() {
        use crate::negacyclic::{NttMultiplier, PolyMultiplier};
        use crate::poly::Polynomial;
        for (n, q) in [(64usize, 12289u64), (1024, 786433)] {
            let t = tables(n, q);
            let plan = FourStepPlan::new(&t).unwrap();
            let m = NttMultiplier::for_degree_modulus(n, q).unwrap();
            let av: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 1) % q).collect();
            let bv: Vec<u64> = (0..n as u64).map(|i| (i * 29 + 11) % q).collect();

            let mut a = av.clone();
            let mut b = bv.clone();
            let mut scratch = vec![0u64; n];
            multiply_into(&plan, &t, &mut a, &mut b, &mut scratch).unwrap();

            let pa = Polynomial::from_coeffs(av, q).unwrap();
            let pb = Polynomial::from_coeffs(bv, q).unwrap();
            let expect = m.multiply(&pa, &pb).unwrap();
            assert_eq!(a, expect.coeffs(), "n = {n}");
        }
    }
}

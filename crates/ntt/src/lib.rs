//! Reference Number Theoretic Transform library.
//!
//! This crate is the *software* (word-level) implementation of the
//! polynomial arithmetic that CryptoPIM accelerates. It serves three
//! roles in the reproduction:
//!
//! 1. the correctness oracle the PIM simulator is verified against,
//! 2. the CPU baseline measured in the Table II comparison, and
//! 3. the arithmetic backend of the RLWE example schemes.
//!
//! Modules:
//!
//! * [`poly`] — the [`poly::Polynomial`] type over `Z_q[x]/(x^n + 1)`.
//! * [`gs`] — the Gentleman–Sande in-place NTT of the paper's
//!   Algorithm 2 (bit-reversed input, natural output, stage-doubling
//!   butterfly distance, bit-reversed twiddle table).
//! * [`dif`] — a textbook decimation-in-frequency NTT (natural input,
//!   bit-reversed output) used as a cross-check and ablation comparator.
//! * [`merged`] — merged-twiddle (`ψ`-folded) CT/GS kernels: the
//!   scale-free, permute-free hot path the multiplier runs on.
//! * [`negacyclic`] — the full NTT-based negacyclic multiplier of
//!   Algorithm 1, plus the [`negacyclic::PolyMultiplier`] trait that lets
//!   callers swap in the PIM-backed multiplier.
//! * [`schoolbook`] — the O(n²) negacyclic multiplier used as the oracle.
//! * [`dft`] — an O(n²) DFT-by-definition oracle for transform tests.
//!
//! # Example
//!
//! ```
//! use modmath::params::ParamSet;
//! use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
//! use ntt::poly::Polynomial;
//!
//! # fn main() -> Result<(), ntt::Error> {
//! let params = ParamSet::for_degree(256)?;
//! let mult = NttMultiplier::new(&params)?;
//! let a = Polynomial::from_coeffs(vec![1; 256], params.q)?;
//! let b = Polynomial::from_coeffs(vec![2; 256], params.q)?;
//! let c = mult.multiply(&a, &b)?;
//! assert_eq!(c.degree_bound(), 256);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod ct;
pub mod dft;
pub mod dif;
pub mod fourstep;
pub mod gs;
pub mod karatsuba;
pub mod merged;
pub mod negacyclic;
pub mod poly;
pub mod rns;
pub mod schoolbook;

/// Errors from this crate are the shared `modmath` error type: every
/// failure mode (bad degree, unfriendly modulus, …) originates there.
pub use modmath::Error;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

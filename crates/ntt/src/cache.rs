//! Frequency-domain operand caching.
//!
//! RLWE protocols multiply *the same* polynomial many times: the public
//! `a` in every encryption, the secret `s` in every decryption. Caching
//! the operand's NTT image saves one of the three transforms per
//! product — a standard software optimization, and the same data reuse
//! the CryptoPIM pipeline gets for free by keeping `Â` resident in its
//! bank (C-INTERMEDIATE).

use crate::negacyclic::NttMultiplier;
use crate::poly::Polynomial;
use crate::Result;

/// A polynomial cached in the (negacyclic) frequency domain.
///
/// # Example
///
/// ```
/// use modmath::params::ParamSet;
/// use ntt::cache::CachedOperand;
/// use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
/// use ntt::poly::Polynomial;
///
/// # fn main() -> Result<(), ntt::Error> {
/// let params = ParamSet::for_degree(256)?;
/// let mult = NttMultiplier::new(&params)?;
/// let a = Polynomial::from_coeffs(vec![5; 256], params.q)?;
/// let cached = CachedOperand::new(&a, &mult)?;
/// let b = Polynomial::from_coeffs(vec![3; 256], params.q)?;
/// assert_eq!(cached.multiply(&b, &mult)?, mult.multiply(&a, &b)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedOperand {
    spectrum: Vec<u64>,
    /// Shoup companions of `spectrum`, precomputed once so every reuse
    /// of the cached operand gets the division-free pointwise path.
    spectrum_shoup: Vec<u64>,
}

impl CachedOperand {
    /// Transforms and caches an operand (including the Shoup companions
    /// of its spectrum).
    ///
    /// # Errors
    ///
    /// Returns an error when the operand degree does not match the
    /// multiplier's.
    pub fn new(a: &Polynomial, mult: &NttMultiplier) -> Result<Self> {
        let spectrum = mult.forward(a)?;
        let spectrum_shoup = modmath::shoup::precompute_table(&spectrum, mult.tables().modulus());
        Ok(CachedOperand {
            spectrum,
            spectrum_shoup,
        })
    }

    /// The cached frequency-domain image.
    pub fn spectrum(&self) -> &[u64] {
        &self.spectrum
    }

    /// Multiplies the cached operand by a fresh one: one forward
    /// transform, one point-wise pass, one inverse transform (instead
    /// of two forwards).
    ///
    /// # Errors
    ///
    /// Returns an error on degree mismatch.
    pub fn multiply(&self, b: &Polynomial, mult: &NttMultiplier) -> Result<Polynomial> {
        let fb = mult.forward(b)?;
        let fc = mult.pointwise_with_shoup(&self.spectrum, &self.spectrum_shoup, &fb)?;
        mult.inverse(fc)
    }

    /// Multiplies two cached operands: just point-wise + inverse.
    ///
    /// # Errors
    ///
    /// Returns an error on degree mismatch.
    pub fn multiply_cached(&self, b: &CachedOperand, mult: &NttMultiplier) -> Result<Polynomial> {
        let fc = mult.pointwise_with_shoup(&self.spectrum, &self.spectrum_shoup, &b.spectrum)?;
        mult.inverse(fc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negacyclic::PolyMultiplier;
    use modmath::params::ParamSet;

    fn setup(n: usize) -> (NttMultiplier, Polynomial, Polynomial) {
        let p = ParamSet::for_degree(n).unwrap();
        let m = NttMultiplier::new(&p).unwrap();
        let a =
            Polynomial::from_coeffs((0..n as u64).map(|i| i * 13 % p.q).collect(), p.q).unwrap();
        let b = Polynomial::from_coeffs((0..n as u64).map(|i| (i * 7 + 2) % p.q).collect(), p.q)
            .unwrap();
        (m, a, b)
    }

    #[test]
    fn cached_multiply_matches_direct() {
        for n in [64usize, 256, 2048] {
            let (m, a, b) = setup(n);
            let cached = CachedOperand::new(&a, &m).unwrap();
            assert_eq!(
                cached.multiply(&b, &m).unwrap(),
                m.multiply(&a, &b).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn doubly_cached_multiply_matches_direct() {
        let (m, a, b) = setup(256);
        let ca = CachedOperand::new(&a, &m).unwrap();
        let cb = CachedOperand::new(&b, &m).unwrap();
        assert_eq!(
            ca.multiply_cached(&cb, &m).unwrap(),
            m.multiply(&a, &b).unwrap()
        );
    }

    #[test]
    fn cache_is_reusable() {
        let (m, a, _) = setup(256);
        let q = m.modulus();
        let cached = CachedOperand::new(&a, &m).unwrap();
        for seed in 0..5u64 {
            let b = Polynomial::from_coeffs((0..256u64).map(|i| (i * seed + 1) % q).collect(), q)
                .unwrap();
            assert_eq!(
                cached.multiply(&b, &m).unwrap(),
                m.multiply(&a, &b).unwrap(),
                "seed = {seed}"
            );
        }
    }

    #[test]
    fn degree_mismatch_errors() {
        let (m, a, _) = setup(256);
        let cached = CachedOperand::new(&a, &m).unwrap();
        let small = Polynomial::zero(128, m.modulus()).unwrap();
        assert!(cached.multiply(&small, &m).is_err());
        let m_small = NttMultiplier::for_degree_modulus(128, 7681).unwrap();
        assert!(CachedOperand::new(&a, &m_small).is_err());
    }

    #[test]
    fn spectrum_accessor() {
        let (m, a, _) = setup(64);
        let cached = CachedOperand::new(&a, &m).unwrap();
        assert_eq!(cached.spectrum().len(), 64);
        assert_eq!(cached.spectrum(), m.forward(&a).unwrap().as_slice());
    }
}

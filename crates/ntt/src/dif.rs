//! Textbook decimation-in-frequency (DIF) NTT used as a cross-check.
//!
//! Natural-order input, bit-reversed output, twiddle multiplied after the
//! subtract (the same Gentleman–Sande butterfly as [`crate::gs`], with
//! stage order reversed: distance starts at `n/2` and halves).
//!
//! The two kernels are mathematically transposes of each other; the test
//! suite asserts `gs(bitrev(x))` ≡ `bitrev(dif(x))` ≡ `DFT(x)`.

use modmath::{bitrev, shoup};

/// Forward DIF NTT in place: natural-order input → bit-reversed output.
///
/// `omega_pows` must hold `ω^j` for `j ∈ [0, n/2)` in **natural** order.
///
/// Internally runs with lazy reduction: Shoup companions for the powers
/// are computed once up front (`n/2` divisions, amortized over
/// `n/2·log n` butterflies), coefficients stay in `[0, 2q)` between
/// stages, and one normalization pass restores canonical output.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two of at least 2, or if
/// `omega_pows.len() != data.len() / 2`.
pub fn dif_forward_in_place(data: &mut [u64], omega_pows: &[u64], q: u64) {
    let n = data.len();
    let log_n = bitrev::log2_exact(n).expect("length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert_eq!(omega_pows.len(), n / 2, "need n/2 natural-order powers");

    let omega_shoup = shoup::precompute_table(omega_pows, q);
    let two_q = q << 1;
    for s in 0..log_n {
        let dist = n >> (s + 1);
        let stride = 1usize << s; // twiddle exponent step within a block
        for chunk in data.chunks_exact_mut(2 * dist) {
            let (lo, hi) = chunk.split_at_mut(dist);
            for (j, (u, v)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let (a, b) = (*u, *v);
                debug_assert!(a < two_q && b < two_q, "lazy inputs must be < 2q");
                let k = j * stride;
                // Branch-free: the sum (< 4q) is folded with a mask, the
                // difference rides through the lazy Shoup multiply.
                *u = shoup::lazy_sub_2q(a + b, two_q);
                *v = shoup::mul_lazy(a + two_q - b, omega_pows[k], omega_shoup[k], q);
            }
        }
    }
    shoup::normalize_slice(data, q);
}

/// Forward cyclic NTT with natural-order output: DIF kernel followed by
/// an explicit bit-reversal.
///
/// # Panics
///
/// Same as [`dif_forward_in_place`].
pub fn forward_natural(data: &mut [u64], omega_pows: &[u64], q: u64) {
    dif_forward_in_place(data, omega_pows, q);
    bitrev::permute_in_place(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dft, gs};
    use modmath::roots::NttTables;
    use modmath::zq as zqm;

    fn natural_powers(t: &NttTables) -> Vec<u64> {
        let q = t.modulus();
        let mut pows = Vec::with_capacity(t.degree() / 2);
        let mut acc = 1u64;
        for _ in 0..t.degree() / 2 {
            pows.push(acc);
            acc = zqm::mul(acc, t.omega(), q);
        }
        pows
    }

    #[test]
    fn dif_matches_dft_oracle() {
        for n in [2usize, 8, 64, 256] {
            let t = NttTables::for_degree_modulus(n, 7681).unwrap();
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (5 * i + 1) % q).collect();
            let mut fast = a.clone();
            forward_natural(&mut fast, &natural_powers(&t), q);
            assert_eq!(fast, dft::dft(&a, t.omega(), q), "n = {n}");
        }
    }

    #[test]
    fn dif_and_gs_agree() {
        // gs(bitrev(x)) == bitrev-corrected dif(x) == DFT(x) in natural order.
        for n in [16usize, 128, 512] {
            let t = NttTables::for_degree_modulus(n, 12289).unwrap();
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 9) % q).collect();

            let mut via_dif = a.clone();
            forward_natural(&mut via_dif, &natural_powers(&t), q);

            let mut via_gs = a.clone();
            gs::forward(&mut via_gs, &t);

            assert_eq!(via_dif, via_gs, "n = {n}");
        }
    }
}

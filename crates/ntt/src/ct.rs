//! Cooley–Tukey (decimation-in-time) NTT and the permutation-free
//! transform composition.
//!
//! The CT butterfly multiplies the twiddle *before* combining
//! (`u + w·v`, `u − w·v`), dual to the Gentleman–Sande butterfly the
//! paper builds in hardware. Two uses here:
//!
//! * an independent kernel cross-checking [`crate::gs`] (different
//!   butterfly, same transform), and
//! * the **no-bitrev composition** modern software (e.g. Kyber's
//!   reference code) uses: forward DIF (natural → bit-reversed),
//!   point-wise multiply in the bit-reversed domain, inverse GS
//!   (bit-reversed → natural) — zero explicit permutations. In
//!   CryptoPIM the permutation is a free write; in software it is not,
//!   which makes this an interesting software-side ablation.

use crate::{dif, gs, Result};
use modmath::roots::NttTables;
use modmath::{bitrev, shoup, zq};

/// In-place Cooley–Tukey kernel: bit-reversed input → natural output.
///
/// `omega_pows` holds `ω^j` for `j ∈ [0, n/2)` in **natural** order.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two of at least 2, or the
/// twiddle table is not `n/2` long.
pub fn ct_kernel_in_place(data: &mut [u64], omega_pows: &[u64], q: u64) {
    let n = data.len();
    let log_n = bitrev::log2_exact(n).expect("length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert_eq!(omega_pows.len(), n / 2, "need n/2 natural-order powers");

    // Chunked branch-free lazy form: coefficients ride in [0, 2q)
    // between stages (every butterfly intermediate stays below 4q and
    // is masked back down), with a single normalization at the end.
    // The Shoup companions cost n/2 divisions, amortized over
    // n/2 · log n butterflies.
    let omega_shoup = shoup::precompute_table(omega_pows, q);
    let two_q = q << 1;
    for s in 0..log_n {
        let half = 1usize << s; // butterfly distance
        let stride = n >> (s + 1); // twiddle exponent step
        for chunk in data.chunks_exact_mut(2 * half) {
            let (lo, hi) = chunk.split_at_mut(half);
            for (j, (u, v)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let (a, b) = (*u, *v);
                debug_assert!(a < two_q && b < two_q, "lazy inputs must be < 2q");
                let k = j * stride;
                let t = shoup::mul_lazy(b, omega_pows[k], omega_shoup[k], q);
                *u = shoup::lazy_sub_2q(a + t, two_q);
                *v = shoup::lazy_sub_2q(a + two_q - t, two_q);
            }
        }
    }
    shoup::normalize_slice(data, q);
}

/// Forward cyclic NTT via CT: natural input and output (explicit
/// bit-reversal first).
///
/// # Panics
///
/// Same as [`ct_kernel_in_place`].
pub fn forward(data: &mut [u64], tables: &NttTables) {
    let q = tables.modulus();
    bitrev::permute_in_place(data);
    ct_kernel_in_place(data, &natural_powers(tables, false), q);
}

/// Natural-order twiddle powers from a table (forward or inverse).
fn natural_powers(tables: &NttTables, inverse: bool) -> Vec<u64> {
    let q = tables.modulus();
    let base = if inverse {
        zq::inv(tables.omega(), q).expect("omega invertible")
    } else {
        tables.omega()
    };
    let mut pows = Vec::with_capacity(tables.degree() / 2);
    let mut acc = 1u64;
    for _ in 0..tables.degree() / 2 {
        pows.push(acc);
        acc = zq::mul(acc, base, q);
    }
    pows
}

/// Negacyclic multiplication with **zero explicit permutations**:
/// forward DIF on both scaled inputs (outputs bit-reversed), point-wise
/// multiply in the bit-reversed domain, inverse GS back to natural
/// order.
///
/// # Errors
///
/// Returns an error when operand lengths differ from the table degree.
pub fn multiply_no_bitrev(a: &[u64], b: &[u64], tables: &NttTables) -> Result<Vec<u64>> {
    let n = tables.degree();
    if a.len() != n || b.len() != n {
        return Err(modmath::Error::InvalidDegree { n: a.len() });
    }
    let q = tables.modulus();
    let fwd_pows = natural_powers(tables, false);

    let scale = |x: &[u64], phis: &[u64]| -> Vec<u64> {
        x.iter()
            .zip(phis)
            .map(|(&c, &p)| zq::mul(c, p, q))
            .collect()
    };

    // Forward DIF: natural → bit-reversed (no permutation executed).
    let mut fa = scale(a, tables.phi_powers());
    let mut fb = scale(b, tables.phi_powers());
    dif::dif_forward_in_place(&mut fa, &fwd_pows, q);
    dif::dif_forward_in_place(&mut fb, &fwd_pows, q);

    // Point-wise in the bit-reversed domain (order-agnostic).
    let mut fc: Vec<u64> = fa
        .iter()
        .zip(&fb)
        .map(|(&x, &y)| zq::mul(x, y, q))
        .collect();

    // Inverse GS: bit-reversed → natural (again, no permutation).
    gs::gs_kernel_in_place(&mut fc, tables.omega_inv_powers(), q);

    let n_inv = tables.n_inv();
    Ok(fc
        .iter()
        .zip(tables.phi_inv_powers())
        .map(|(&c, &p)| zq::mul(zq::mul(c, n_inv, q), p, q))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negacyclic::{NttMultiplier, PolyMultiplier};
    use crate::poly::Polynomial;
    use crate::{dft, schoolbook};
    use modmath::params::ParamSet;

    fn tables(n: usize, q: u64) -> NttTables {
        NttTables::for_degree_modulus(n, q).unwrap()
    }

    #[test]
    fn ct_matches_dft_oracle() {
        for n in [2usize, 8, 64, 256] {
            let t = tables(n, 7681);
            let a: Vec<u64> = (0..n as u64).map(|i| (11 * i + 5) % 7681).collect();
            let mut fast = a.clone();
            forward(&mut fast, &t);
            assert_eq!(fast, dft::dft(&a, t.omega(), 7681), "n = {n}");
        }
    }

    #[test]
    fn ct_and_gs_agree() {
        for n in [16usize, 128, 1024] {
            let t = tables(n, 12289);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 1) % 12289).collect();
            let mut via_ct = a.clone();
            forward(&mut via_ct, &t);
            let mut via_gs = a.clone();
            gs::forward(&mut via_gs, &t);
            assert_eq!(via_ct, via_gs, "n = {n}");
        }
    }

    #[test]
    fn no_bitrev_multiply_matches_schoolbook() {
        for (n, q) in [(8usize, 7681u64), (32, 12289), (64, 12289)] {
            let t = tables(n, q);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (i * i + 9) % q).collect();
            let got = multiply_no_bitrev(&a, &b, &t).unwrap();
            let pa = Polynomial::from_coeffs(a, q).unwrap();
            let pb = Polynomial::from_coeffs(b, q).unwrap();
            let expect = schoolbook::multiply(&pa, &pb).unwrap();
            assert_eq!(got, expect.coeffs(), "n = {n}");
        }
    }

    #[test]
    fn no_bitrev_matches_standard_multiplier_paper_sizes() {
        for n in [256usize, 1024, 4096] {
            let p = ParamSet::for_degree(n).unwrap();
            let t = tables(n, p.q);
            let m = NttMultiplier::new(&p).unwrap();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 1) % p.q).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (i * 17 + 4) % p.q).collect();
            let got = multiply_no_bitrev(&a, &b, &t).unwrap();
            let pa = Polynomial::from_coeffs(a, p.q).unwrap();
            let pb = Polynomial::from_coeffs(b, p.q).unwrap();
            assert_eq!(got, m.multiply(&pa, &pb).unwrap().coeffs(), "n = {n}");
        }
    }

    #[test]
    fn degree_mismatch_errors() {
        let t = tables(64, 12289);
        assert!(multiply_no_bitrev(&[0; 32], &[0; 64], &t).is_err());
    }
}

//! O(n²) schoolbook negacyclic multiplication — the correctness oracle.
//!
//! In `Z_q[x]/(x^n + 1)`, `x^n ≡ −1`, so the coefficient of `x^k` in
//! `a·b` is `Σ_{i+j=k} a_i b_j − Σ_{i+j=k+n} a_i b_j`.

use crate::poly::Polynomial;
use crate::Result;
use modmath::{zq, Error};

/// Multiplies two polynomials in `Z_q[x]/(x^n + 1)` by the definition.
///
/// # Errors
///
/// Returns [`Error::InvalidDegree`] if the operands have different
/// lengths, and [`Error::NotPrime`] is never returned (any modulus works).
///
/// # Example
///
/// ```
/// use ntt::poly::Polynomial;
/// use ntt::schoolbook::multiply;
///
/// # fn main() -> Result<(), ntt::Error> {
/// // (x + 1)² = x² + 2x + 1 in Z_17[x]/(x^4 + 1)
/// let a = Polynomial::from_coeffs(vec![1, 1, 0, 0], 17)?;
/// let c = multiply(&a, &a)?;
/// assert_eq!(c.coeffs(), &[1, 2, 1, 0]);
/// # Ok(())
/// # }
/// ```
pub fn multiply(a: &Polynomial, b: &Polynomial) -> Result<Polynomial> {
    if a.degree_bound() != b.degree_bound() {
        return Err(Error::InvalidDegree {
            n: b.degree_bound(),
        });
    }
    assert_eq!(a.modulus(), b.modulus(), "mismatched moduli");
    let n = a.degree_bound();
    let q = a.modulus();
    let mut out = vec![0u64; n];
    for i in 0..n {
        let ai = a.coeff(i);
        if ai == 0 {
            continue;
        }
        for j in 0..n {
            let prod = zq::mul(ai, b.coeff(j), q);
            let k = i + j;
            if k < n {
                out[k] = zq::add(out[k], prod, q);
            } else {
                // x^n ≡ −1: wrap with a sign flip.
                out[k - n] = zq::sub(out[k - n], prod, q);
            }
        }
    }
    Polynomial::from_coeffs(out, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(coeffs: &[u64], q: u64) -> Polynomial {
        Polynomial::from_coeffs(coeffs.to_vec(), q).unwrap()
    }

    #[test]
    fn multiply_by_one_is_identity() {
        let q = 17;
        let a = poly(&[3, 1, 4, 1], q);
        let one = poly(&[1, 0, 0, 0], q);
        assert_eq!(multiply(&a, &one).unwrap(), a);
    }

    #[test]
    fn multiply_by_x_rotates_with_sign() {
        let q = 17;
        let a = poly(&[1, 2, 3, 4], q);
        let x = poly(&[0, 1, 0, 0], q);
        // x·(1 + 2x + 3x² + 4x³) = x + 2x² + 3x³ + 4x⁴ = −4 + x + 2x² + 3x³
        assert_eq!(multiply(&a, &x).unwrap().coeffs(), &[q - 4, 1, 2, 3]);
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        let q = 17;
        let n = 8;
        // (x^{n/2})² = x^n = −1
        let mut half = vec![0u64; n];
        half[n / 2] = 1;
        let h = poly(&half, q);
        let sq = multiply(&h, &h).unwrap();
        let mut expect = vec![0u64; n];
        expect[0] = q - 1;
        assert_eq!(sq.coeffs(), &expect);
    }

    #[test]
    fn commutative() {
        let q = 7681;
        let a = poly(&[5, 0, 2, 9, 1, 0, 0, 3], q);
        let b = poly(&[1, 1, 1, 1, 0, 0, 7, 2], q);
        assert_eq!(multiply(&a, &b).unwrap(), multiply(&b, &a).unwrap());
    }

    #[test]
    fn distributes_over_addition() {
        let q = 7681;
        let a = poly(&[5, 0, 2, 9], q);
        let b = poly(&[1, 1, 1, 1], q);
        let c = poly(&[9, 8, 7, 6], q);
        let lhs = multiply(&a, &(b.clone() + c.clone())).unwrap();
        let rhs = multiply(&a, &b).unwrap() + multiply(&a, &c).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mismatched_lengths_error() {
        let q = 17;
        let a = poly(&[1, 2, 3, 4], q);
        let b = poly(&[1, 2], q);
        assert!(multiply(&a, &b).is_err());
    }
}

//! The Gentleman–Sande in-place NTT of the paper's Algorithm 2.
//!
//! Structure (faithful to the published loop):
//!
//! * `log2 n` stages; at stage `i` the butterfly distance is `2^i`
//!   (doubling), so the transform consumes **bit-reversed** input and
//!   produces **natural-order** output.
//! * The Gentleman–Sande butterfly: `A[j] ← T + A[j']`,
//!   `A[j'] ← W · (T − A[j'])` — the twiddle multiplies *after* the
//!   subtract (decimation-in-frequency style).
//! * The twiddle for the pair starting at `j` is `twiddle[j >> (i+1)]`
//!   where the table holds the `n/2` powers of `ω` in **bit-reversed
//!   order** (Algorithm 1's precompute step stores `w^i, w^-i` reversed).
//!
//! The inverse transform is the same kernel run with the `ω^-1` table
//! followed by an `n⁻¹` scaling (callers usually fold that scaling into
//! the `φ^-i` post-multiply; [`inverse`] keeps it explicit).
//!
//! # Lazy reduction
//!
//! The hot path is [`gs_kernel_lazy_in_place`]: coefficients stay in
//! `[0, 2q)` between stages, the butterfly sum pays one conditional
//! subtraction of `2q`, the difference path computes `a − b + 2q ∈
//! (0, 4q)` and feeds it straight into a Shoup multiply (valid for any
//! `u64` input, result back in `[0, 2q)`; see [`modmath::shoup`]). A
//! single normalization pass at the end of the transform restores
//! canonical form. [`gs_kernel_in_place`] remains the strict
//! canonical-in/canonical-out kernel for cross-checks.
//!
//! # Kernel shape
//!
//! The lazy kernel is written for the autovectorizer, not the paper's
//! index arithmetic:
//!
//! * **Branch-free butterflies.** The conditional subtraction is a mask
//!   ([`shoup::lazy_sub_2q`]), so the inner loops contain no
//!   data-dependent branches and no `%`.
//! * **Radix-4 (merged two-stage) passes.** Stages `i` and `i+1` are
//!   fused: each `4·2^i`-element chunk loads its three twiddles once and
//!   runs four butterflies per iteration, halving twiddle-table walks
//!   and loop overhead. When `log2 n` is odd the leftover radix-2 stage
//!   runs last (distance `n/2`, a single chunk — the most vectorizable
//!   stage). The per-element operation sequence is unchanged, so lazy
//!   values stay bit-identical to the classic stage-by-stage schedule.
//! * **Half-width multiplies for small moduli.** For
//!   `q < `[`shoup::HALF_MODULUS_LIMIT`] (every paper modulus) the
//!   butterfly uses [`shoup::mul_lazy_half`]: three 32×32→64 multiplies
//!   that SSE2/AVX2 can lower to packed `pmuludq`, instead of two
//!   128-bit-producing multiplies. The half-width companion is the high
//!   word of the regular Shoup table, so no extra tables are carried.
//!   Intermediate *representatives* may differ from the wide path, but
//!   every value stays in `[0, 2q)` and residues are identical, so all
//!   canonical (normalized) outputs are bit-identical.
//!
//! [`gs_kernel_lazy_batch`] applies the same passes stage-outer across
//! a batch of B stacked transforms, so one twiddle-table walk stays
//! cache-hot across all B polynomials.

use modmath::roots::NttTables;
use modmath::{bitrev, shoup, zq};

/// Runs the Gentleman–Sande kernel in place.
///
/// `data` must be in bit-reversed order; on return it holds the transform
/// in natural order. `twiddle` must contain the `n/2` stage twiddles in
/// bit-reversed order (`twiddle[t] = ω^{rev(t)}`), exactly the layout of
/// [`NttTables::omega_powers`].
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two of at least 2, or if
/// `twiddle.len() != data.len() / 2`.
pub fn gs_kernel_in_place(data: &mut [u64], twiddle: &[u64], q: u64) {
    let n = data.len();
    let log_n = bitrev::log2_exact(n).expect("length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert_eq!(twiddle.len(), n / 2, "twiddle table must have n/2 entries");

    for i in 0..log_n {
        let dist = 1usize << i;
        // Enumerate the lower index j of every butterfly pair: all j with
        // bit i clear. (This matches the paper's idx → (st, j, j')
        // arithmetic without the garbled bit tricks.)
        for idx in 0..n / 2 {
            let st = idx & (dist - 1);
            let j = ((idx & !(dist - 1)) << 1) | st;
            let jp = j + dist;
            let w = twiddle[j >> (i + 1)];
            let t = data[j];
            data[j] = zq::add(t, data[jp], q);
            data[jp] = zq::mul(w, zq::sub(t, data[jp], q), q);
        }
    }
}

/// Runs the Gentleman–Sande kernel in place with lazy reduction.
///
/// Same butterfly schedule as [`gs_kernel_in_place`], but coefficients
/// are only kept in `[0, 2q)`: the sum path conditionally subtracts
/// `2q`, the difference path forms `a − b + 2q ∈ (0, 4q)` and reduces it
/// through the Shoup multiply. Inputs must be below `2q` (canonical
/// values qualify); outputs are below `2q` and callers normalize once at
/// the end (e.g. via [`modmath::shoup::normalize_slice`]).
///
/// `twiddle_shoup` must hold the Shoup companions of `twiddle`, exactly
/// the layout of [`NttTables::omega_powers_shoup`].
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two of at least 2, or if the
/// twiddle tables do not have `data.len() / 2` entries each.
pub fn gs_kernel_lazy_in_place(data: &mut [u64], twiddle: &[u64], twiddle_shoup: &[u64], q: u64) {
    let n = data.len();
    let log_n = bitrev::log2_exact(n).expect("length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert_eq!(twiddle.len(), n / 2, "twiddle table must have n/2 entries");
    assert_eq!(
        twiddle_shoup.len(),
        n / 2,
        "Shoup table must have n/2 entries"
    );
    let two_q = q << 1;
    debug_assert!(data.iter().all(|&c| c < two_q), "inputs must be < 2q");

    if q < shoup::HALF_MODULUS_LIMIT {
        simd::run_gs_half(data, twiddle, twiddle_shoup, log_n, HalfBfly { q, two_q });
    } else {
        run_gs(data, twiddle, twiddle_shoup, log_n, WideBfly { q, two_q });
    }
}

/// Runs B independent lazy GS transforms stacked in one flat buffer.
///
/// `data.len()` must be a multiple of `n`; each `n`-length block is one
/// bit-reversed-order transform input. The stage loop is *outer* and the
/// per-polynomial loop *inner*, so every stage's twiddle reads stay hot
/// in cache across the whole batch — one effective table walk per batch
/// instead of one per polynomial. Outputs are bit-identical (as lazy
/// values) to calling [`gs_kernel_lazy_in_place`] on each block.
///
/// # Panics
///
/// Panics if `n` is not a power of two of at least 2, `data.len()` is
/// not a positive multiple of `n`, or the twiddle tables do not have
/// `n / 2` entries each.
pub fn gs_kernel_lazy_batch(
    data: &mut [u64],
    n: usize,
    twiddle: &[u64],
    twiddle_shoup: &[u64],
    q: u64,
) {
    let log_n = bitrev::log2_exact(n).expect("transform length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert!(
        !data.is_empty() && data.len().is_multiple_of(n),
        "batch buffer must be a positive multiple of n"
    );
    assert_eq!(twiddle.len(), n / 2, "twiddle table must have n/2 entries");
    assert_eq!(
        twiddle_shoup.len(),
        n / 2,
        "Shoup table must have n/2 entries"
    );
    let two_q = q << 1;
    debug_assert!(data.iter().all(|&c| c < two_q), "inputs must be < 2q");

    if q < shoup::HALF_MODULUS_LIMIT {
        simd::run_gs_batch_half(
            data,
            n,
            twiddle,
            twiddle_shoup,
            log_n,
            HalfBfly { q, two_q },
        );
    } else {
        run_gs_batch(
            data,
            n,
            twiddle,
            twiddle_shoup,
            log_n,
            WideBfly { q, two_q },
        );
    }
}

/// Runtime-dispatched compilations of the half-width kernel.
///
/// The half-width butterfly is pure 32×32→64 arithmetic, which the loop
/// vectorizer only lowers to packed multiplies (`vpmuludq`) when wide
/// enough registers make it profitable. `#[target_feature]` recompiles
/// the *same* generic passes with the AVX-512/AVX2 cost models; the
/// arithmetic is identical, so results are bit-identical across paths
/// and the portable scalar build remains the fallback (and the only
/// path off x86-64).
mod simd {
    #[allow(unused_imports)]
    use super::{run_gs, run_gs_batch, HalfBfly};

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    unsafe fn run_gs_half_avx512(
        data: &mut [u64],
        twiddle: &[u64],
        twiddle_shoup: &[u64],
        log_n: u32,
        bf: HalfBfly,
    ) {
        run_gs(data, twiddle, twiddle_shoup, log_n, bf);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_gs_half_avx2(
        data: &mut [u64],
        twiddle: &[u64],
        twiddle_shoup: &[u64],
        log_n: u32,
        bf: HalfBfly,
    ) {
        run_gs(data, twiddle, twiddle_shoup, log_n, bf);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    unsafe fn run_gs_batch_half_avx512(
        data: &mut [u64],
        n: usize,
        twiddle: &[u64],
        twiddle_shoup: &[u64],
        log_n: u32,
        bf: HalfBfly,
    ) {
        run_gs_batch(data, n, twiddle, twiddle_shoup, log_n, bf);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_gs_batch_half_avx2(
        data: &mut [u64],
        n: usize,
        twiddle: &[u64],
        twiddle_shoup: &[u64],
        log_n: u32,
        bf: HalfBfly,
    ) {
        run_gs_batch(data, n, twiddle, twiddle_shoup, log_n, bf);
    }

    pub(super) fn run_gs_half(
        data: &mut [u64],
        twiddle: &[u64],
        twiddle_shoup: &[u64],
        log_n: u32,
        bf: HalfBfly,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                // SAFETY: feature presence checked at runtime just above.
                unsafe { run_gs_half_avx512(data, twiddle, twiddle_shoup, log_n, bf) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence checked at runtime just above.
                unsafe { run_gs_half_avx2(data, twiddle, twiddle_shoup, log_n, bf) };
                return;
            }
        }
        run_gs(data, twiddle, twiddle_shoup, log_n, bf);
    }

    pub(super) fn run_gs_batch_half(
        data: &mut [u64],
        n: usize,
        twiddle: &[u64],
        twiddle_shoup: &[u64],
        log_n: u32,
        bf: HalfBfly,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                // SAFETY: feature presence checked at runtime just above.
                unsafe { run_gs_batch_half_avx512(data, n, twiddle, twiddle_shoup, log_n, bf) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence checked at runtime just above.
                unsafe { run_gs_batch_half_avx2(data, n, twiddle, twiddle_shoup, log_n, bf) };
                return;
            }
        }
        run_gs_batch(data, n, twiddle, twiddle_shoup, log_n, bf);
    }
}

/// One lazy GS butterfly strategy. Both implementations take lazy inputs
/// `a, b < 2q` and return lazy outputs `< 2q`: the sum path is a masked
/// conditional subtraction of `2q`, the difference path a Shoup multiply
/// of `a − b + 2q ∈ (0, 4q)`.
trait Butterfly: Copy {
    fn eval(self, a: u64, b: u64, w: u64, ws: u64) -> (u64, u64);
}

/// Full-width butterfly: exactly the classic `shoup::mul_lazy` sequence,
/// valid for any `q ≤ 2^62`. Lazy values are bit-identical to the
/// pre-radix-4 kernel (the masked subtract computes the same value as
/// the old branch).
#[derive(Clone, Copy)]
struct WideBfly {
    q: u64,
    two_q: u64,
}

impl Butterfly for WideBfly {
    #[inline(always)]
    fn eval(self, a: u64, b: u64, w: u64, ws: u64) -> (u64, u64) {
        debug_assert!(a < self.two_q && b < self.two_q, "lazy inputs must be < 2q");
        let s = shoup::lazy_sub_2q(a + b, self.two_q); // a + b < 4q
        let d = shoup::mul_lazy(a + self.two_q - b, w, ws, self.q);
        (s, d)
    }
}

/// Half-width butterfly for `q < 2^30`: three 32×32→64 multiplies via
/// [`shoup::mul_lazy_half`]. `ws` is the *full* 64-bit Shoup companion;
/// its high word is the half-width companion (loop-invariant shift, the
/// compiler hoists it out of the butterfly loop).
#[derive(Clone, Copy)]
struct HalfBfly {
    q: u64,
    two_q: u64,
}

impl Butterfly for HalfBfly {
    #[inline(always)]
    fn eval(self, a: u64, b: u64, w: u64, ws: u64) -> (u64, u64) {
        debug_assert!(a < self.two_q && b < self.two_q, "lazy inputs must be < 2q");
        let s = shoup::lazy_sub_2q(a + b, self.two_q); // a + b < 4q < 2^32
        let d = shoup::mul_lazy_half(a + self.two_q - b, w, ws >> 32, self.q);
        (s, d)
    }
}

/// Full transform: radix-4 passes over stage pairs, with the leftover
/// radix-2 stage (odd `log2 n`) run last — at distance `n/2` it is a
/// single chunk with one twiddle, the most vectorizer-friendly stage.
#[inline(always)]
fn run_gs<B: Butterfly>(
    data: &mut [u64],
    twiddle: &[u64],
    twiddle_shoup: &[u64],
    log_n: u32,
    bf: B,
) {
    let mut i = 0;
    while i + 2 <= log_n {
        radix4_pass(data, twiddle, twiddle_shoup, i, bf);
        i += 2;
    }
    if i < log_n {
        radix2_pass(data, twiddle, twiddle_shoup, i, bf);
    }
}

/// Stage-outer batch variant of [`run_gs`]: each pass streams all
/// stacked polynomials before advancing, keeping the twiddles cache-hot.
#[inline(always)]
fn run_gs_batch<B: Butterfly>(
    data: &mut [u64],
    n: usize,
    twiddle: &[u64],
    twiddle_shoup: &[u64],
    log_n: u32,
    bf: B,
) {
    let mut i = 0;
    while i + 2 <= log_n {
        for poly in data.chunks_exact_mut(n) {
            radix4_pass(poly, twiddle, twiddle_shoup, i, bf);
        }
        i += 2;
    }
    if i < log_n {
        for poly in data.chunks_exact_mut(n) {
            radix2_pass(poly, twiddle, twiddle_shoup, i, bf);
        }
    }
}

/// Merged stages `i` and `i+1` over chunks of `4·2^i` coefficients.
///
/// Chunk `c` covers the stage-`i` blocks `2c` and `2c+1` (twiddles
/// `twiddle[2c]`, `twiddle[2c+1]`) and the stage-`i+1` block `c`
/// (twiddle `twiddle[c]`) — the bit-reversed table layout makes all
/// three reads sequential-ish. Four butterflies per iteration, three
/// twiddle loads per chunk instead of per stage walk.
#[inline(always)]
fn radix4_pass<B: Butterfly>(
    data: &mut [u64],
    twiddle: &[u64],
    twiddle_shoup: &[u64],
    stage: u32,
    bf: B,
) {
    let d = 1usize << stage;
    for (c, chunk) in data.chunks_exact_mut(4 * d).enumerate() {
        let (w0, ws0) = (twiddle[2 * c], twiddle_shoup[2 * c]);
        let (w1, ws1) = (twiddle[2 * c + 1], twiddle_shoup[2 * c + 1]);
        let (w2, ws2) = (twiddle[c], twiddle_shoup[c]);
        let (lo, hi) = chunk.split_at_mut(2 * d);
        let (q0, q1) = lo.split_at_mut(d);
        let (q2, q3) = hi.split_at_mut(d);
        for (((x0, x1), x2), x3) in q0
            .iter_mut()
            .zip(q1.iter_mut())
            .zip(q2.iter_mut())
            .zip(q3.iter_mut())
        {
            // Stage i: pairs (q0, q1) and (q2, q3).
            let (a0, a1) = bf.eval(*x0, *x1, w0, ws0);
            let (b0, b1) = bf.eval(*x2, *x3, w1, ws1);
            // Stage i+1 (distance 2d): pairs (q0, q2) and (q1, q3).
            let (y0, y2) = bf.eval(a0, b0, w2, ws2);
            let (y1, y3) = bf.eval(a1, b1, w2, ws2);
            *x0 = y0;
            *x1 = y1;
            *x2 = y2;
            *x3 = y3;
        }
    }
}

/// One classic radix-2 stage, chunked and branch-free.
#[inline(always)]
fn radix2_pass<B: Butterfly>(
    data: &mut [u64],
    twiddle: &[u64],
    twiddle_shoup: &[u64],
    stage: u32,
    bf: B,
) {
    let d = 1usize << stage;
    for (chunk, (&w, &ws)) in data
        .chunks_exact_mut(2 * d)
        .zip(twiddle.iter().zip(twiddle_shoup))
    {
        let (lo, hi) = chunk.split_at_mut(d);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (s, t) = bf.eval(*a, *b, w, ws);
            *a = s;
            *b = t;
        }
    }
}

/// Forward cyclic NTT: natural-order input, natural-order output.
///
/// Applies the bit-reversal permutation (free in CryptoPIM — it is a row
/// write permutation), then the lazy GS kernel with the forward
/// twiddles, then one normalization pass.
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn forward(data: &mut [u64], tables: &NttTables) {
    assert_eq!(data.len(), tables.degree(), "length mismatch");
    let q = tables.modulus();
    bitrev::permute_in_place(data);
    gs_kernel_lazy_in_place(data, tables.omega_powers(), tables.omega_powers_shoup(), q);
    shoup::normalize_slice(data, q);
}

/// Inverse cyclic NTT: natural-order input, natural-order output,
/// including the `n⁻¹` scaling (applied as a Shoup multiply fused with
/// the final normalization).
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn inverse(data: &mut [u64], tables: &NttTables) {
    assert_eq!(data.len(), tables.degree(), "length mismatch");
    let q = tables.modulus();
    bitrev::permute_in_place(data);
    gs_kernel_lazy_in_place(
        data,
        tables.omega_inv_powers(),
        tables.omega_inv_powers_shoup(),
        q,
    );
    let (n_inv, n_inv_shoup) = (tables.n_inv(), tables.n_inv_shoup());
    for c in data.iter_mut() {
        *c = shoup::mul(*c, n_inv, n_inv_shoup, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;
    use modmath::params::ParamSet;
    use proptest::prelude::*;

    fn tables(n: usize) -> NttTables {
        let p = ParamSet::for_degree(n).unwrap();
        NttTables::new(&p).unwrap()
    }

    fn tables_nq(n: usize, q: u64) -> NttTables {
        NttTables::for_degree_modulus(n, q).unwrap()
    }

    #[test]
    fn forward_matches_dft_oracle_small() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let t = tables_nq(n, 7681);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % 7681).collect();
            let mut fast = a.clone();
            forward(&mut fast, &t);
            let oracle = dft::dft(&a, t.omega(), 7681);
            assert_eq!(fast, oracle, "n = {n}");
        }
    }

    #[test]
    fn forward_matches_dft_oracle_paper_sizes() {
        for n in [256usize, 512, 1024] {
            let t = tables(n);
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 3 * i + 1) % q).collect();
            let mut fast = a.clone();
            forward(&mut fast, &t);
            let oracle = dft::dft(&a, t.omega(), q);
            assert_eq!(fast, oracle, "n = {n}");
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        for n in [4usize, 64, 256, 1024, 4096] {
            let t = tables(n);
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 997 + 12) % q).collect();
            let mut data = a.clone();
            forward(&mut data, &t);
            inverse(&mut data, &t);
            assert_eq!(data, a, "n = {n}");
        }
    }

    #[test]
    fn forward_of_delta_is_constant() {
        let t = tables(256);
        let mut a = vec![0u64; 256];
        a[0] = 1;
        forward(&mut a, &t);
        assert!(a.iter().all(|&c| c == 1));
    }

    #[test]
    fn lazy_kernel_matches_strict_kernel() {
        for (n, q) in [(8usize, 7681u64), (64, 12289), (256, 786433)] {
            let t = tables_nq(n, q);
            let data: Vec<u64> = (0..n as u64).map(|i| (i * 7919 + 13) % q).collect();

            let mut strict = data.clone();
            gs_kernel_in_place(&mut strict, t.omega_powers(), q);

            let mut lazy = data.clone();
            gs_kernel_lazy_in_place(&mut lazy, t.omega_powers(), t.omega_powers_shoup(), q);
            assert!(lazy.iter().all(|&c| c < 2 * q), "lazy outputs below 2q");
            modmath::shoup::normalize_slice(&mut lazy, q);

            assert_eq!(lazy, strict, "n = {n}, q = {q}");
        }
    }

    #[test]
    fn lazy_kernel_accepts_noncanonical_inputs() {
        // Values in [q, 2q) must transform to the same residues as their
        // canonical counterparts.
        let n = 64;
        let q = 12289;
        let t = tables_nq(n, q);
        let canonical: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % q).collect();
        let shifted: Vec<u64> = canonical.iter().map(|&c| c + q).collect();

        let mut a = canonical.clone();
        gs_kernel_lazy_in_place(&mut a, t.omega_powers(), t.omega_powers_shoup(), q);
        modmath::shoup::normalize_slice(&mut a, q);

        let mut b = shifted;
        gs_kernel_lazy_in_place(&mut b, t.omega_powers(), t.omega_powers_shoup(), q);
        modmath::shoup::normalize_slice(&mut b, q);

        assert_eq!(a, b);
    }

    /// Largest prime `q ≡ 1 (mod 2n)` at or below `limit`.
    fn ntt_prime_below(limit: u64, two_n: u64) -> u64 {
        let mut q = limit - ((limit - 1) % two_n);
        while !modmath::primes::is_prime(q) {
            q -= two_n;
        }
        q
    }

    #[test]
    fn lazy_kernel_worst_case_half_width_modulus() {
        // The largest NTT-friendly prime below the half-width limit:
        // butterfly sums approach 4q < 2^32 and the 32×32→64 multiply
        // operands approach their bounds. Inputs at the lazy maximum
        // 2q − 1 stress the [0, 4q) intermediate range.
        let n = 64usize;
        let q = ntt_prime_below(shoup::HALF_MODULUS_LIMIT - 1, 2 * n as u64);
        assert!(q < shoup::HALF_MODULUS_LIMIT);
        let t = tables_nq(n, q);
        let data: Vec<u64> = (0..n as u64)
            .map(|i| {
                if i % 3 == 0 {
                    2 * q - 1
                } else {
                    (i * 7919) % (2 * q)
                }
            })
            .collect();

        let mut lazy = data.clone();
        gs_kernel_lazy_in_place(&mut lazy, t.omega_powers(), t.omega_powers_shoup(), q);
        assert!(lazy.iter().all(|&c| c < 2 * q), "outputs stay below 2q");
        modmath::shoup::normalize_slice(&mut lazy, q);

        let mut strict: Vec<u64> = data.iter().map(|&c| c % q).collect();
        gs_kernel_in_place(&mut strict, t.omega_powers(), q);
        assert_eq!(lazy, strict);
    }

    #[test]
    fn lazy_kernel_worst_case_wide_modulus() {
        // A prime near 2^62 forces the full-width butterfly path and the
        // extreme end of the u64 headroom analysis (sums just below 4q).
        let n = 64usize;
        let q = ntt_prime_below(1 << 62, 2 * n as u64);
        assert!(q >= shoup::HALF_MODULUS_LIMIT);
        let t = tables_nq(n, q);
        let data: Vec<u64> = (0..n as u64)
            .map(|i| {
                if i % 3 == 0 {
                    2 * q - 1
                } else {
                    (i * 7919) % (2 * q)
                }
            })
            .collect();

        let mut lazy = data.clone();
        gs_kernel_lazy_in_place(&mut lazy, t.omega_powers(), t.omega_powers_shoup(), q);
        assert!(lazy.iter().all(|&c| c < 2 * q), "outputs stay below 2q");
        modmath::shoup::normalize_slice(&mut lazy, q);

        let mut strict: Vec<u64> = data.iter().map(|&c| c % q).collect();
        gs_kernel_in_place(&mut strict, t.omega_powers(), q);
        assert_eq!(lazy, strict);
    }

    #[test]
    fn lazy_kernel_all_small_sizes_match_strict() {
        // Covers every radix-4/radix-2 pass combination: even and odd
        // log2 n, including the degenerate n = 2 (pure radix-2).
        for n in [2usize, 4, 8, 16, 32, 64, 128] {
            let t = tables_nq(n, 7681);
            let q = 7681u64;
            let data: Vec<u64> = (0..n as u64).map(|i| (i * 131 + 7) % q).collect();

            let mut strict = data.clone();
            gs_kernel_in_place(&mut strict, t.omega_powers(), q);

            let mut lazy = data.clone();
            gs_kernel_lazy_in_place(&mut lazy, t.omega_powers(), t.omega_powers_shoup(), q);
            modmath::shoup::normalize_slice(&mut lazy, q);
            assert_eq!(lazy, strict, "n = {n}");
        }
    }

    #[test]
    fn batch_kernel_bit_identical_to_sequential() {
        for (n, q) in [(8usize, 7681u64), (64, 12289), (256, 786433)] {
            let t = tables_nq(n, q);
            for b in 1..=5usize {
                let mut flat: Vec<u64> = (0..(b * n) as u64)
                    .map(|i| (i * 2654435761) % (2 * q))
                    .collect();
                let mut seq = flat.clone();
                gs_kernel_lazy_batch(&mut flat, n, t.omega_powers(), t.omega_powers_shoup(), q);
                for poly in seq.chunks_exact_mut(n) {
                    gs_kernel_lazy_in_place(poly, t.omega_powers(), t.omega_powers_shoup(), q);
                }
                // Lazy values (not just residues) must agree exactly.
                assert_eq!(flat, seq, "n = {n}, q = {q}, b = {b}");
            }
        }
    }

    #[test]
    fn kernel_rejects_bad_twiddle_len() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u64; 8];
            gs_kernel_in_place(&mut data, &[1, 2], 17);
        });
        assert!(result.is_err());
    }

    #[test]
    fn convolution_theorem_cyclic() {
        // NTT(a) ⊙ NTT(b) = NTT(a ⊛ b) for the *cyclic* convolution.
        let n = 64;
        let t = tables_nq(n, 7681);
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i + 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (3 * i + 2) % q).collect();
        // Cyclic convolution by definition.
        let mut conv = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let k = (i + j) % n;
                conv[k] = zq::add(conv[k], zq::mul(ai, bj, q), q);
            }
        }
        let mut fa = a.clone();
        let mut fb = b.clone();
        forward(&mut fa, &t);
        forward(&mut fb, &t);
        let mut prod: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| zq::mul(x, y, q))
            .collect();
        inverse(&mut prod, &t);
        assert_eq!(prod, conv);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip_random(coeffs in proptest::collection::vec(0u64..12289, 512)) {
            let t = tables(512);
            let mut data = coeffs.clone();
            forward(&mut data, &t);
            inverse(&mut data, &t);
            prop_assert_eq!(data, coeffs);
        }

        #[test]
        fn prop_linearity(
            a in proptest::collection::vec(0u64..7681, 256),
            b in proptest::collection::vec(0u64..7681, 256),
        ) {
            let t = tables(256);
            let q = t.modulus();
            let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| zq::add(x, y, q)).collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum = sum.clone();
            forward(&mut fa, &t);
            forward(&mut fb, &t);
            forward(&mut fsum, &t);
            for k in 0..256 {
                prop_assert_eq!(fsum[k], zq::add(fa[k], fb[k], q));
            }
        }
    }
}

//! The Gentleman–Sande in-place NTT of the paper's Algorithm 2.
//!
//! Structure (faithful to the published loop):
//!
//! * `log2 n` stages; at stage `i` the butterfly distance is `2^i`
//!   (doubling), so the transform consumes **bit-reversed** input and
//!   produces **natural-order** output.
//! * The Gentleman–Sande butterfly: `A[j] ← T + A[j']`,
//!   `A[j'] ← W · (T − A[j'])` — the twiddle multiplies *after* the
//!   subtract (decimation-in-frequency style).
//! * The twiddle for the pair starting at `j` is `twiddle[j >> (i+1)]`
//!   where the table holds the `n/2` powers of `ω` in **bit-reversed
//!   order** (Algorithm 1's precompute step stores `w^i, w^-i` reversed).
//!
//! The inverse transform is the same kernel run with the `ω^-1` table
//! followed by an `n⁻¹` scaling (callers usually fold that scaling into
//! the `φ^-i` post-multiply; [`inverse`] keeps it explicit).

use modmath::roots::NttTables;
use modmath::{bitrev, zq};

/// Runs the Gentleman–Sande kernel in place.
///
/// `data` must be in bit-reversed order; on return it holds the transform
/// in natural order. `twiddle` must contain the `n/2` stage twiddles in
/// bit-reversed order (`twiddle[t] = ω^{rev(t)}`), exactly the layout of
/// [`NttTables::omega_powers`].
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two of at least 2, or if
/// `twiddle.len() != data.len() / 2`.
pub fn gs_kernel_in_place(data: &mut [u64], twiddle: &[u64], q: u64) {
    let n = data.len();
    let log_n = bitrev::log2_exact(n).expect("length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert_eq!(twiddle.len(), n / 2, "twiddle table must have n/2 entries");

    for i in 0..log_n {
        let dist = 1usize << i;
        // Enumerate the lower index j of every butterfly pair: all j with
        // bit i clear. (This matches the paper's idx → (st, j, j')
        // arithmetic without the garbled bit tricks.)
        for idx in 0..n / 2 {
            let st = idx & (dist - 1);
            let j = ((idx & !(dist - 1)) << 1) | st;
            let jp = j + dist;
            let w = twiddle[j >> (i + 1)];
            let t = data[j];
            data[j] = zq::add(t, data[jp], q);
            data[jp] = zq::mul(w, zq::sub(t, data[jp], q), q);
        }
    }
}

/// Forward cyclic NTT: natural-order input, natural-order output.
///
/// Applies the bit-reversal permutation (free in CryptoPIM — it is a row
/// write permutation) and then the GS kernel with the forward twiddles.
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn forward(data: &mut [u64], tables: &NttTables) {
    assert_eq!(data.len(), tables.degree(), "length mismatch");
    bitrev::permute_in_place(data);
    gs_kernel_in_place(data, tables.omega_powers(), tables.modulus());
}

/// Inverse cyclic NTT: natural-order input, natural-order output,
/// including the `n⁻¹` scaling.
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn inverse(data: &mut [u64], tables: &NttTables) {
    assert_eq!(data.len(), tables.degree(), "length mismatch");
    let q = tables.modulus();
    bitrev::permute_in_place(data);
    gs_kernel_in_place(data, tables.omega_inv_powers(), q);
    let n_inv = tables.n_inv();
    for c in data.iter_mut() {
        *c = zq::mul(*c, n_inv, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;
    use modmath::params::ParamSet;
    use proptest::prelude::*;

    fn tables(n: usize) -> NttTables {
        let p = ParamSet::for_degree(n).unwrap();
        NttTables::new(&p).unwrap()
    }

    fn tables_nq(n: usize, q: u64) -> NttTables {
        NttTables::for_degree_modulus(n, q).unwrap()
    }

    #[test]
    fn forward_matches_dft_oracle_small() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let t = tables_nq(n, 7681);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % 7681).collect();
            let mut fast = a.clone();
            forward(&mut fast, &t);
            let oracle = dft::dft(&a, t.omega(), 7681);
            assert_eq!(fast, oracle, "n = {n}");
        }
    }

    #[test]
    fn forward_matches_dft_oracle_paper_sizes() {
        for n in [256usize, 512, 1024] {
            let t = tables(n);
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 3 * i + 1) % q).collect();
            let mut fast = a.clone();
            forward(&mut fast, &t);
            let oracle = dft::dft(&a, t.omega(), q);
            assert_eq!(fast, oracle, "n = {n}");
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        for n in [4usize, 64, 256, 1024, 4096] {
            let t = tables(n);
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 997 + 12) % q).collect();
            let mut data = a.clone();
            forward(&mut data, &t);
            inverse(&mut data, &t);
            assert_eq!(data, a, "n = {n}");
        }
    }

    #[test]
    fn forward_of_delta_is_constant() {
        let t = tables(256);
        let mut a = vec![0u64; 256];
        a[0] = 1;
        forward(&mut a, &t);
        assert!(a.iter().all(|&c| c == 1));
    }

    #[test]
    fn kernel_rejects_bad_twiddle_len() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u64; 8];
            gs_kernel_in_place(&mut data, &[1, 2], 17);
        });
        assert!(result.is_err());
    }

    #[test]
    fn convolution_theorem_cyclic() {
        // NTT(a) ⊙ NTT(b) = NTT(a ⊛ b) for the *cyclic* convolution.
        let n = 64;
        let t = tables_nq(n, 7681);
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i + 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (3 * i + 2) % q).collect();
        // Cyclic convolution by definition.
        let mut conv = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let k = (i + j) % n;
                conv[k] = zq::add(conv[k], zq::mul(ai, bj, q), q);
            }
        }
        let mut fa = a.clone();
        let mut fb = b.clone();
        forward(&mut fa, &t);
        forward(&mut fb, &t);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| zq::mul(x, y, q)).collect();
        inverse(&mut prod, &t);
        assert_eq!(prod, conv);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip_random(coeffs in proptest::collection::vec(0u64..12289, 512)) {
            let t = tables(512);
            let mut data = coeffs.clone();
            forward(&mut data, &t);
            inverse(&mut data, &t);
            prop_assert_eq!(data, coeffs);
        }

        #[test]
        fn prop_linearity(
            a in proptest::collection::vec(0u64..7681, 256),
            b in proptest::collection::vec(0u64..7681, 256),
        ) {
            let t = tables(256);
            let q = t.modulus();
            let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| zq::add(x, y, q)).collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum = sum.clone();
            forward(&mut fa, &t);
            forward(&mut fb, &t);
            forward(&mut fsum, &t);
            for k in 0..256 {
                prop_assert_eq!(fsum[k], zq::add(fa[k], fb[k], q));
            }
        }
    }
}

//! The Gentleman–Sande in-place NTT of the paper's Algorithm 2.
//!
//! Structure (faithful to the published loop):
//!
//! * `log2 n` stages; at stage `i` the butterfly distance is `2^i`
//!   (doubling), so the transform consumes **bit-reversed** input and
//!   produces **natural-order** output.
//! * The Gentleman–Sande butterfly: `A[j] ← T + A[j']`,
//!   `A[j'] ← W · (T − A[j'])` — the twiddle multiplies *after* the
//!   subtract (decimation-in-frequency style).
//! * The twiddle for the pair starting at `j` is `twiddle[j >> (i+1)]`
//!   where the table holds the `n/2` powers of `ω` in **bit-reversed
//!   order** (Algorithm 1's precompute step stores `w^i, w^-i` reversed).
//!
//! The inverse transform is the same kernel run with the `ω^-1` table
//! followed by an `n⁻¹` scaling (callers usually fold that scaling into
//! the `φ^-i` post-multiply; [`inverse`] keeps it explicit).
//!
//! # Lazy reduction
//!
//! The hot path is [`gs_kernel_lazy_in_place`]: coefficients stay in
//! `[0, 2q)` between stages, the butterfly sum pays one conditional
//! subtraction of `2q`, the difference path computes `a − b + 2q ∈
//! (0, 4q)` and feeds it straight into a Shoup multiply (valid for any
//! `u64` input, result back in `[0, 2q)`; see [`modmath::shoup`]). A
//! single normalization pass at the end of the transform restores
//! canonical form. [`gs_kernel_in_place`] remains the strict
//! canonical-in/canonical-out kernel for cross-checks.

use modmath::roots::NttTables;
use modmath::{bitrev, shoup, zq};

/// Runs the Gentleman–Sande kernel in place.
///
/// `data` must be in bit-reversed order; on return it holds the transform
/// in natural order. `twiddle` must contain the `n/2` stage twiddles in
/// bit-reversed order (`twiddle[t] = ω^{rev(t)}`), exactly the layout of
/// [`NttTables::omega_powers`].
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two of at least 2, or if
/// `twiddle.len() != data.len() / 2`.
pub fn gs_kernel_in_place(data: &mut [u64], twiddle: &[u64], q: u64) {
    let n = data.len();
    let log_n = bitrev::log2_exact(n).expect("length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert_eq!(twiddle.len(), n / 2, "twiddle table must have n/2 entries");

    for i in 0..log_n {
        let dist = 1usize << i;
        // Enumerate the lower index j of every butterfly pair: all j with
        // bit i clear. (This matches the paper's idx → (st, j, j')
        // arithmetic without the garbled bit tricks.)
        for idx in 0..n / 2 {
            let st = idx & (dist - 1);
            let j = ((idx & !(dist - 1)) << 1) | st;
            let jp = j + dist;
            let w = twiddle[j >> (i + 1)];
            let t = data[j];
            data[j] = zq::add(t, data[jp], q);
            data[jp] = zq::mul(w, zq::sub(t, data[jp], q), q);
        }
    }
}

/// Runs the Gentleman–Sande kernel in place with lazy reduction.
///
/// Same butterfly schedule as [`gs_kernel_in_place`], but coefficients
/// are only kept in `[0, 2q)`: the sum path conditionally subtracts
/// `2q`, the difference path forms `a − b + 2q ∈ (0, 4q)` and reduces it
/// through the Shoup multiply. Inputs must be below `2q` (canonical
/// values qualify); outputs are below `2q` and callers normalize once at
/// the end (e.g. via [`modmath::shoup::normalize_slice`]).
///
/// `twiddle_shoup` must hold the Shoup companions of `twiddle`, exactly
/// the layout of [`NttTables::omega_powers_shoup`].
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two of at least 2, or if the
/// twiddle tables do not have `data.len() / 2` entries each.
pub fn gs_kernel_lazy_in_place(data: &mut [u64], twiddle: &[u64], twiddle_shoup: &[u64], q: u64) {
    let n = data.len();
    let log_n = bitrev::log2_exact(n).expect("length must be a power of two");
    assert!(n >= 2, "transform length must be at least 2");
    assert_eq!(twiddle.len(), n / 2, "twiddle table must have n/2 entries");
    assert_eq!(
        twiddle_shoup.len(),
        n / 2,
        "Shoup table must have n/2 entries"
    );
    let two_q = q << 1;
    debug_assert!(data.iter().all(|&c| c < two_q), "inputs must be < 2q");

    for i in 0..log_n {
        let dist = 1usize << i;
        // Stage i visits n / 2^(i+1) blocks of 2·dist coefficients; the
        // block at position t uses twiddle[t] (the tables are stored in
        // bit-reversed order precisely so stages read them
        // sequentially). Iterating blocks via chunks keeps the twiddle
        // in a register and lets the compiler drop all bounds checks.
        for (chunk, (&w, &ws)) in data
            .chunks_exact_mut(2 * dist)
            .zip(twiddle.iter().zip(twiddle_shoup))
        {
            let (lo, hi) = chunk.split_at_mut(dist);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b;
                let mut s = u + v; // < 4q, fits u64 for q ≤ 2^62
                if s >= two_q {
                    s -= two_q;
                }
                *a = s;
                *b = shoup::mul_lazy(u + two_q - v, w, ws, q);
            }
        }
    }
}

/// Forward cyclic NTT: natural-order input, natural-order output.
///
/// Applies the bit-reversal permutation (free in CryptoPIM — it is a row
/// write permutation), then the lazy GS kernel with the forward
/// twiddles, then one normalization pass.
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn forward(data: &mut [u64], tables: &NttTables) {
    assert_eq!(data.len(), tables.degree(), "length mismatch");
    let q = tables.modulus();
    bitrev::permute_in_place(data);
    gs_kernel_lazy_in_place(data, tables.omega_powers(), tables.omega_powers_shoup(), q);
    shoup::normalize_slice(data, q);
}

/// Inverse cyclic NTT: natural-order input, natural-order output,
/// including the `n⁻¹` scaling (applied as a Shoup multiply fused with
/// the final normalization).
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn inverse(data: &mut [u64], tables: &NttTables) {
    assert_eq!(data.len(), tables.degree(), "length mismatch");
    let q = tables.modulus();
    bitrev::permute_in_place(data);
    gs_kernel_lazy_in_place(
        data,
        tables.omega_inv_powers(),
        tables.omega_inv_powers_shoup(),
        q,
    );
    let (n_inv, n_inv_shoup) = (tables.n_inv(), tables.n_inv_shoup());
    for c in data.iter_mut() {
        *c = shoup::mul(*c, n_inv, n_inv_shoup, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;
    use modmath::params::ParamSet;
    use proptest::prelude::*;

    fn tables(n: usize) -> NttTables {
        let p = ParamSet::for_degree(n).unwrap();
        NttTables::new(&p).unwrap()
    }

    fn tables_nq(n: usize, q: u64) -> NttTables {
        NttTables::for_degree_modulus(n, q).unwrap()
    }

    #[test]
    fn forward_matches_dft_oracle_small() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let t = tables_nq(n, 7681);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % 7681).collect();
            let mut fast = a.clone();
            forward(&mut fast, &t);
            let oracle = dft::dft(&a, t.omega(), 7681);
            assert_eq!(fast, oracle, "n = {n}");
        }
    }

    #[test]
    fn forward_matches_dft_oracle_paper_sizes() {
        for n in [256usize, 512, 1024] {
            let t = tables(n);
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 3 * i + 1) % q).collect();
            let mut fast = a.clone();
            forward(&mut fast, &t);
            let oracle = dft::dft(&a, t.omega(), q);
            assert_eq!(fast, oracle, "n = {n}");
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        for n in [4usize, 64, 256, 1024, 4096] {
            let t = tables(n);
            let q = t.modulus();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 997 + 12) % q).collect();
            let mut data = a.clone();
            forward(&mut data, &t);
            inverse(&mut data, &t);
            assert_eq!(data, a, "n = {n}");
        }
    }

    #[test]
    fn forward_of_delta_is_constant() {
        let t = tables(256);
        let mut a = vec![0u64; 256];
        a[0] = 1;
        forward(&mut a, &t);
        assert!(a.iter().all(|&c| c == 1));
    }

    #[test]
    fn lazy_kernel_matches_strict_kernel() {
        for (n, q) in [(8usize, 7681u64), (64, 12289), (256, 786433)] {
            let t = tables_nq(n, q);
            let data: Vec<u64> = (0..n as u64).map(|i| (i * 7919 + 13) % q).collect();

            let mut strict = data.clone();
            gs_kernel_in_place(&mut strict, t.omega_powers(), q);

            let mut lazy = data.clone();
            gs_kernel_lazy_in_place(&mut lazy, t.omega_powers(), t.omega_powers_shoup(), q);
            assert!(lazy.iter().all(|&c| c < 2 * q), "lazy outputs below 2q");
            modmath::shoup::normalize_slice(&mut lazy, q);

            assert_eq!(lazy, strict, "n = {n}, q = {q}");
        }
    }

    #[test]
    fn lazy_kernel_accepts_noncanonical_inputs() {
        // Values in [q, 2q) must transform to the same residues as their
        // canonical counterparts.
        let n = 64;
        let q = 12289;
        let t = tables_nq(n, q);
        let canonical: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % q).collect();
        let shifted: Vec<u64> = canonical.iter().map(|&c| c + q).collect();

        let mut a = canonical.clone();
        gs_kernel_lazy_in_place(&mut a, t.omega_powers(), t.omega_powers_shoup(), q);
        modmath::shoup::normalize_slice(&mut a, q);

        let mut b = shifted;
        gs_kernel_lazy_in_place(&mut b, t.omega_powers(), t.omega_powers_shoup(), q);
        modmath::shoup::normalize_slice(&mut b, q);

        assert_eq!(a, b);
    }

    #[test]
    fn kernel_rejects_bad_twiddle_len() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u64; 8];
            gs_kernel_in_place(&mut data, &[1, 2], 17);
        });
        assert!(result.is_err());
    }

    #[test]
    fn convolution_theorem_cyclic() {
        // NTT(a) ⊙ NTT(b) = NTT(a ⊛ b) for the *cyclic* convolution.
        let n = 64;
        let t = tables_nq(n, 7681);
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i + 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (3 * i + 2) % q).collect();
        // Cyclic convolution by definition.
        let mut conv = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let k = (i + j) % n;
                conv[k] = zq::add(conv[k], zq::mul(ai, bj, q), q);
            }
        }
        let mut fa = a.clone();
        let mut fb = b.clone();
        forward(&mut fa, &t);
        forward(&mut fb, &t);
        let mut prod: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| zq::mul(x, y, q))
            .collect();
        inverse(&mut prod, &t);
        assert_eq!(prod, conv);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip_random(coeffs in proptest::collection::vec(0u64..12289, 512)) {
            let t = tables(512);
            let mut data = coeffs.clone();
            forward(&mut data, &t);
            inverse(&mut data, &t);
            prop_assert_eq!(data, coeffs);
        }

        #[test]
        fn prop_linearity(
            a in proptest::collection::vec(0u64..7681, 256),
            b in proptest::collection::vec(0u64..7681, 256),
        ) {
            let t = tables(256);
            let q = t.modulus();
            let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| zq::add(x, y, q)).collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum = sum.clone();
            forward(&mut fa, &t);
            forward(&mut fb, &t);
            forward(&mut fsum, &t);
            for k in 0..256 {
                prop_assert_eq!(fsum[k], zq::add(fa[k], fb[k], q));
            }
        }
    }
}

//! RNS (residue-number-system) polynomial multiplication over a
//! two-prime composite modulus.
//!
//! For coefficient moduli wider than one machine-friendly prime (real
//! BGV/BFV deployments use 100+-bit `Q`), the ring splits into
//! independent channels `Z_{q1}` and `Z_{q2}`; each channel runs its own
//! NTT — on CryptoPIM, in its own softbank, in parallel — and the
//! results recombine by CRT. This module implements the two-channel
//! version as the architecture extension DESIGN.md §6 calls out.

use crate::negacyclic::{NttMultiplier, PolyMultiplier};
use crate::poly::Polynomial;
use crate::Result;
use modmath::crt::Crt2;
use modmath::{primes, Error};

/// A negacyclic multiplier over `Z_{q1·q2}[x]/(x^n + 1)`.
///
/// # Example
///
/// ```
/// use ntt::rns::RnsMultiplier;
///
/// # fn main() -> Result<(), ntt::Error> {
/// let mult = RnsMultiplier::new(1024, 12289, 40961)?;
/// assert_eq!(mult.modulus(), 12289u128 * 40961);
/// let x = {
///     let mut c = vec![0u128; 1024];
///     c[1] = 1;
///     c
/// };
/// let x2 = mult.multiply(&x, &x)?;
/// assert_eq!(x2[2], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RnsMultiplier {
    n: usize,
    crt: Crt2,
    chan1: NttMultiplier,
    chan2: NttMultiplier,
}

impl RnsMultiplier {
    /// Builds a multiplier for degree `n` over `q1·q2`. Both primes must
    /// support a length-`n` negacyclic NTT.
    ///
    /// # Errors
    ///
    /// Propagates primality/root-of-unity failures from either channel.
    pub fn new(n: usize, q1: u64, q2: u64) -> Result<Self> {
        let crt = Crt2::new(q1, q2)?;
        Ok(RnsMultiplier {
            n,
            crt,
            chan1: NttMultiplier::for_degree_modulus(n, q1)?,
            chan2: NttMultiplier::for_degree_modulus(n, q2)?,
        })
    }

    /// Picks the two smallest NTT-friendly primes above `floor` for
    /// degree `n` and builds the multiplier.
    ///
    /// # Errors
    ///
    /// Propagates channel-construction failures; `Error::InvalidDegree`
    /// if no primes are found (practically unreachable).
    pub fn with_discovered_primes(n: usize, floor: u64) -> Result<Self> {
        let q1 = primes::find_ntt_prime(n, floor).ok_or(Error::InvalidDegree { n })?;
        let q2 = primes::find_ntt_prime(n, q1).ok_or(Error::InvalidDegree { n })?;
        Self::new(n, q1, q2)
    }

    /// The ring degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The composite modulus `q1·q2`.
    #[inline]
    pub fn modulus(&self) -> u128 {
        self.crt.modulus()
    }

    /// The channel moduli.
    pub fn channel_moduli(&self) -> (u64, u64) {
        (self.crt.q1(), self.crt.q2())
    }

    /// Multiplies two polynomials with coefficients below `q1·q2`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch.
    pub fn multiply(&self, a: &[u128], b: &[u128]) -> Result<Vec<u128>> {
        if a.len() != self.n || b.len() != self.n {
            return Err(Error::InvalidDegree { n: a.len() });
        }
        let to_channel = |x: &[u128], q: u64| -> Result<Polynomial> {
            Polynomial::from_coeffs(x.iter().map(|&c| (c % q as u128) as u64).collect(), q)
        };
        let a1 = to_channel(a, self.crt.q1())?;
        let b1 = to_channel(b, self.crt.q1())?;
        let a2 = to_channel(a, self.crt.q2())?;
        let b2 = to_channel(b, self.crt.q2())?;
        let c1 = self.chan1.multiply(&a1, &b1)?;
        let c2 = self.chan2.multiply(&a2, &b2)?;
        Ok(c1
            .coeffs()
            .iter()
            .zip(c2.coeffs())
            .map(|(&r1, &r2)| self.crt.combine(r1, r2))
            .collect())
    }
}

/// Schoolbook negacyclic multiplication over a `u128` modulus — the
/// oracle for the RNS path. Quadratic; test sizes only.
#[allow(clippy::needless_range_loop)] // paired i/j indexing mirrors the math
pub fn schoolbook_u128(a: &[u128], b: &[u128], modulus: u128) -> Vec<u128> {
    let n = a.len();
    assert_eq!(n, b.len());
    // Guard against overflow: operands must keep a·b + acc within u128.
    // q1·q2 < 2^63 in all our parameter choices, so products are < 2^126.
    assert!(modulus < 1 << 63, "oracle limited to moduli below 2^63");
    let mut out = vec![0u128; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = (a[i] * b[j]) % modulus;
            let k = i + j;
            if k < n {
                out[k] = (out[k] + prod) % modulus;
            } else {
                out[k - n] = (out[k - n] + modulus - prod) % modulus;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_vec(n: usize, modulus: u128, seed: u64) -> Vec<u128> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state as u128) % modulus
            })
            .collect()
    }

    #[test]
    fn matches_schoolbook_oracle() {
        let mult = RnsMultiplier::new(64, 12289, 40961).unwrap();
        let q = mult.modulus();
        let a = rand_vec(64, q, 1);
        let b = rand_vec(64, q, 2);
        assert_eq!(mult.multiply(&a, &b).unwrap(), schoolbook_u128(&a, &b, q));
    }

    #[test]
    fn wide_modulus_actually_used() {
        // A coefficient above both single primes must survive intact:
        // x · 1 = x.
        let mult = RnsMultiplier::new(64, 12289, 40961).unwrap();
        let q = mult.modulus();
        assert!(q > 1 << 28, "composite modulus is wide: {q}");
        let mut a = vec![0u128; 64];
        a[0] = q - 1; // larger than either prime alone
        let mut one = vec![0u128; 64];
        one[0] = 1;
        let c = mult.multiply(&a, &one).unwrap();
        assert_eq!(c[0], q - 1);
    }

    #[test]
    fn discovered_primes_work() {
        let mult = RnsMultiplier::with_discovered_primes(256, 1 << 14).unwrap();
        let (q1, q2) = mult.channel_moduli();
        assert!(q1 > 1 << 14 && q2 > q1);
        assert!(primes::supports_negacyclic_ntt(q1, 256));
        assert!(primes::supports_negacyclic_ntt(q2, 256));
        let q = mult.modulus();
        let a = rand_vec(256, q, 5);
        let b = rand_vec(256, q, 6);
        // Verify against a spot identity: multiply by x shifts.
        let mut x = vec![0u128; 256];
        x[1] = 1;
        let shifted = mult.multiply(&a, &x).unwrap();
        assert_eq!(shifted[1], a[0]);
        assert_eq!(shifted[0], (q - a[255]) % q);
        // Full oracle at this size is still fine.
        assert_eq!(mult.multiply(&a, &b).unwrap(), schoolbook_u128(&a, &b, q));
    }

    #[test]
    fn degree_mismatch_errors() {
        let mult = RnsMultiplier::new(64, 12289, 40961).unwrap();
        assert!(mult.multiply(&[0; 32], &[0; 64]).is_err());
    }

    #[test]
    fn channel_requirements_enforced() {
        // 17 is prime but does not support a length-64 negacyclic NTT.
        assert!(RnsMultiplier::new(64, 12289, 17).is_err());
        // Composite channel.
        assert!(RnsMultiplier::new(64, 12289, 40962).is_err());
    }
}

//! RNS (residue-number-system) polynomial multiplication over a
//! composite modulus of 2..=4 machine-friendly primes.
//!
//! For coefficient moduli wider than one machine-friendly prime (real
//! BGV/BFV deployments use 100+-bit `Q`), the ring splits into
//! independent channels `Z_{q_i}`; each channel runs its own NTT — on
//! CryptoPIM, in its own superbank, in parallel — and the results
//! recombine by Garner's mixed-radix CRT. The basis bookkeeping lives
//! in [`modmath::crt::RnsBasis`]; this module stacks one
//! [`NttMultiplier`] per residue channel on top of it and adds a
//! batch-fused path that runs every job's residues for a channel
//! through one fused transform pass.

use crate::negacyclic::{NttMultiplier, PolyMultiplier};
use crate::poly::Polynomial;
use crate::Result;
use modmath::crt::RnsBasis;
use modmath::Error;

/// A negacyclic multiplier over `Z_Q[x]/(x^n + 1)` with `Q = Π q_i`.
///
/// # Example
///
/// ```
/// use ntt::rns::RnsMultiplier;
///
/// # fn main() -> Result<(), ntt::Error> {
/// let mult = RnsMultiplier::new(1024, &[12289, 40961])?;
/// assert_eq!(mult.modulus(), 12289u128 * 40961);
/// let x = {
///     let mut c = vec![0u128; 1024];
///     c[1] = 1;
///     c
/// };
/// let x2 = mult.multiply(&x, &x)?;
/// assert_eq!(x2[2], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RnsMultiplier {
    n: usize,
    basis: RnsBasis,
    channels: Vec<NttMultiplier>,
}

impl RnsMultiplier {
    /// Builds a multiplier for degree `n` over `Π moduli`. Every prime
    /// must support a length-`n` negacyclic NTT.
    ///
    /// # Errors
    ///
    /// Propagates basis-validation errors ([`Error::BasisSize`],
    /// [`Error::NotPrime`], [`Error::NotCoprime`],
    /// [`Error::BasisOverflow`], [`Error::NoRootOfUnity`]) plus
    /// channel-construction failures.
    pub fn new(n: usize, moduli: &[u64]) -> Result<Self> {
        let basis = RnsBasis::for_degree(n, moduli)?;
        Self::with_basis(n, basis)
    }

    /// Builds a multiplier from an already-validated basis.
    ///
    /// # Errors
    ///
    /// Propagates channel-construction failures (e.g. an unsupported
    /// degree).
    pub fn with_basis(n: usize, basis: RnsBasis) -> Result<Self> {
        let channels = basis
            .moduli()
            .iter()
            .map(|&q| NttMultiplier::for_degree_modulus(n, q))
            .collect::<Result<Vec<_>>>()?;
        Ok(RnsMultiplier { n, basis, channels })
    }

    /// Discovers `k` ascending NTT-friendly primes above `floor` for
    /// degree `n` and builds the multiplier.
    ///
    /// # Errors
    ///
    /// Propagates basis and channel-construction failures.
    pub fn with_discovered_basis(n: usize, k: usize, floor: u64) -> Result<Self> {
        let basis = RnsBasis::discover(n, k, floor)?;
        Self::with_basis(n, basis)
    }

    /// Two-channel convenience around
    /// [`RnsMultiplier::with_discovered_basis`].
    ///
    /// # Errors
    ///
    /// Propagates basis and channel-construction failures.
    pub fn with_discovered_primes(n: usize, floor: u64) -> Result<Self> {
        Self::with_discovered_basis(n, 2, floor)
    }

    /// The ring degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The composite modulus `Π q_i`.
    #[inline]
    pub fn modulus(&self) -> u128 {
        self.basis.modulus()
    }

    /// The residue-channel moduli, in construction order.
    pub fn channel_moduli(&self) -> &[u64] {
        self.basis.moduli()
    }

    /// The underlying residue basis.
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    fn check_len(&self, a: &[u128], b: &[u128]) -> Result<()> {
        if a.len() != self.n || b.len() != self.n {
            return Err(Error::InvalidDegree { n: a.len() });
        }
        Ok(())
    }

    fn split_operand(&self, x: &[u128], lane: usize) -> Result<Polynomial> {
        let mut buf = vec![0u64; self.n];
        self.basis.split_lane_into(x, lane, &mut buf);
        Polynomial::from_canonical_coeffs(buf, self.basis.moduli()[lane])
    }

    /// Multiplies two polynomials with coefficients below `Q`, running
    /// the residue channels sequentially (the baseline the sharded
    /// service pipeline is measured against).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch.
    pub fn multiply(&self, a: &[u128], b: &[u128]) -> Result<Vec<u128>> {
        self.check_len(a, b)?;
        let lanes = self
            .channels
            .iter()
            .enumerate()
            .map(|(i, chan)| {
                let ai = self.split_operand(a, i)?;
                let bi = self.split_operand(b, i)?;
                Ok(chan.multiply(&ai, &bi)?.into_coeffs())
            })
            .collect::<Result<Vec<Vec<u64>>>>()?;
        let lane_refs: Vec<&[u64]> = lanes.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0u128; self.n];
        self.basis.combine_into(&lane_refs, &mut out);
        Ok(out)
    }

    /// Multiplies a batch of wide-coefficient pairs, fusing each
    /// residue channel's transforms: all jobs' lane-`i` residues flow
    /// through one [`NttMultiplier::multiply_batch_into`] call, so the
    /// per-stage twiddle walk is shared across the batch exactly as in
    /// the single-prime engine batch path.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on an empty batch or any
    /// operand-length mismatch.
    pub fn multiply_batch(&self, jobs: &[(Vec<u128>, Vec<u128>)]) -> Result<Vec<Vec<u128>>> {
        if jobs.is_empty() {
            return Err(Error::InvalidDegree { n: 0 });
        }
        for (a, b) in jobs {
            self.check_len(a, b)?;
        }
        let n = self.n;
        let total = n * jobs.len();
        // lane_products[i] holds every job's lane-i product back to back.
        let mut lane_products: Vec<Vec<u64>> = Vec::with_capacity(self.channels.len());
        let mut fa = vec![0u64; total];
        let mut fb = vec![0u64; total];
        for (lane, chan) in self.channels.iter().enumerate() {
            for (j, (a, b)) in jobs.iter().enumerate() {
                self.basis
                    .split_lane_into(a, lane, &mut fa[j * n..(j + 1) * n]);
                self.basis
                    .split_lane_into(b, lane, &mut fb[j * n..(j + 1) * n]);
            }
            let mut fo = vec![0u64; total];
            chan.multiply_batch_into(&mut fa, &mut fb, &mut fo)?;
            lane_products.push(fo);
        }
        let mut out = Vec::with_capacity(jobs.len());
        for j in 0..jobs.len() {
            let lane_refs: Vec<&[u64]> = lane_products
                .iter()
                .map(|lane| &lane[j * n..(j + 1) * n])
                .collect();
            let mut wide = vec![0u128; n];
            self.basis.combine_into(&lane_refs, &mut wide);
            out.push(wide);
        }
        Ok(out)
    }
}

/// Schoolbook negacyclic multiplication over a `u128` modulus — the
/// oracle for the RNS path. Quadratic; test sizes only.
#[allow(clippy::needless_range_loop)] // paired i/j indexing mirrors the math
pub fn schoolbook_u128(a: &[u128], b: &[u128], modulus: u128) -> Vec<u128> {
    let n = a.len();
    assert_eq!(n, b.len());
    // Guard against overflow: operands must keep a·b + acc within u128.
    // Π q_i < 2^63 in all oracle comparisons, so products are < 2^126.
    assert!(modulus < 1 << 63, "oracle limited to moduli below 2^63");
    let mut out = vec![0u128; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = (a[i] * b[j]) % modulus;
            let k = i + j;
            if k < n {
                out[k] = (out[k] + prod) % modulus;
            } else {
                out[k - n] = (out[k - n] + modulus - prod) % modulus;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::primes;

    fn rand_vec(n: usize, modulus: u128, seed: u64) -> Vec<u128> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state as u128) % modulus
            })
            .collect()
    }

    #[test]
    fn matches_schoolbook_oracle_k2_to_k4() {
        for k in 2..=4 {
            let moduli = [7681u64, 12289, 40961, 65537];
            let mult = RnsMultiplier::new(64, &moduli[..k]).unwrap();
            let q = mult.modulus();
            let a = rand_vec(64, q, 1);
            let b = rand_vec(64, q, 2);
            assert_eq!(
                mult.multiply(&a, &b).unwrap(),
                schoolbook_u128(&a, &b, q),
                "k = {k}"
            );
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let mult = RnsMultiplier::new(64, &[7681, 12289, 40961]).unwrap();
        let q = mult.modulus();
        let jobs: Vec<(Vec<u128>, Vec<u128>)> = (0..5)
            .map(|j| (rand_vec(64, q, 10 + j), rand_vec(64, q, 20 + j)))
            .collect();
        let batched = mult.multiply_batch(&jobs).unwrap();
        for (got, (a, b)) in batched.iter().zip(&jobs) {
            assert_eq!(got, &mult.multiply(a, b).unwrap());
        }
    }

    #[test]
    fn wide_modulus_actually_used() {
        // A coefficient above every single prime must survive intact:
        // x · 1 = x.
        let mult = RnsMultiplier::new(64, &[12289, 40961]).unwrap();
        let q = mult.modulus();
        assert!(q > 1 << 28, "composite modulus is wide: {q}");
        let mut a = vec![0u128; 64];
        a[0] = q - 1; // larger than any prime alone
        let mut one = vec![0u128; 64];
        one[0] = 1;
        let c = mult.multiply(&a, &one).unwrap();
        assert_eq!(c[0], q - 1);
    }

    #[test]
    fn discovered_basis_works() {
        let mult = RnsMultiplier::with_discovered_basis(256, 3, 1 << 14).unwrap();
        let m = mult.channel_moduli();
        assert_eq!(m.len(), 3);
        assert!(m[0] > 1 << 14 && m.windows(2).all(|w| w[0] < w[1]));
        for &q in m {
            assert!(primes::supports_negacyclic_ntt(q, 256));
        }
        let q = mult.modulus();
        let a = rand_vec(256, q, 5);
        // Spot identity: multiply by x shifts negacyclically.
        let mut x = vec![0u128; 256];
        x[1] = 1;
        let shifted = mult.multiply(&a, &x).unwrap();
        assert_eq!(shifted[1], a[0]);
        assert_eq!(shifted[0], (q - a[255]) % q);
    }

    #[test]
    fn degree_mismatch_errors() {
        let mult = RnsMultiplier::new(64, &[12289, 40961]).unwrap();
        assert!(mult.multiply(&[0; 32], &[0; 64]).is_err());
        assert!(mult.multiply_batch(&[]).is_err());
    }

    #[test]
    fn channel_requirements_enforced() {
        // 17 is prime but does not support a length-64 negacyclic NTT.
        assert!(matches!(
            RnsMultiplier::new(64, &[12289, 17]),
            Err(Error::NoRootOfUnity { q: 17, .. })
        ));
        // Composite channel.
        assert!(matches!(
            RnsMultiplier::new(64, &[12289, 40962]),
            Err(Error::NotPrime { q: 40962 })
        ));
        // Too few channels.
        assert!(matches!(
            RnsMultiplier::new(64, &[12289]),
            Err(Error::BasisSize { k: 1 })
        ));
    }
}

//! Algorithm 1: the NTT-based negacyclic polynomial multiplier.
//!
//! The negacyclic product in `Z_q[x]/(x^n + 1)` is computed as
//!
//! ```text
//! c = φ̄ ⊙ INTT( NTT(φ ⊙ a) ⊙ NTT(φ ⊙ b) )
//! ```
//!
//! where `φ ⊙ a` scales coefficient `i` by `φ^i` (the 2n-th root of
//! unity) and `φ̄` by `φ^{-i}`; the `n⁻¹` factor of the inverse transform
//! is folded into the post-scaling, mirroring the hardware pipeline where
//! that multiply shares the `c̄_i φ^{-i}` block.
//!
//! [`PolyMultiplier`] is the object-safe trait the RLWE layer and the
//! PIM-backed accelerator both implement, so schemes can swap backends.

use crate::poly::Polynomial;
use crate::{fourstep, gs, merged, Result};
use modmath::params::ParamSet;
use modmath::roots::NttTables;
use modmath::{bitrev, shoup, zq, Error};
use std::time::Instant;

/// Wall-clock split of a batch multiply, reported by
/// [`NttMultiplier::multiply_batch_into`] so callers (the service
/// loadgen, the reliability referee) can attribute time to transform
/// work vs pointwise work without re-instrumenting the kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPhaseTiming {
    /// Nanoseconds spent in forward + inverse transforms.
    pub transform_ns: u64,
    /// Nanoseconds spent in the pointwise product pass.
    pub pointwise_ns: u64,
}

impl BatchPhaseTiming {
    /// Accumulates another timing split into this one.
    pub fn accumulate(&mut self, other: BatchPhaseTiming) {
        self.transform_ns += other.transform_ns;
        self.pointwise_ns += other.pointwise_ns;
    }
}

/// Anything that can multiply two polynomials in `Z_q[x]/(x^n + 1)`.
///
/// Implemented by [`NttMultiplier`] (software reference),
/// `schoolbook`-based oracles, and the PIM-backed accelerator in the
/// `cryptopim` crate.
pub trait PolyMultiplier {
    /// The ring degree this multiplier is configured for.
    fn degree(&self) -> usize;

    /// The coefficient modulus.
    fn modulus(&self) -> u64;

    /// Multiplies `a · b` in `Z_q[x]/(x^n + 1)`.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::InvalidDegree`] when the operands
    /// do not match the configured degree.
    fn multiply(&self, a: &Polynomial, b: &Polynomial) -> Result<Polynomial>;

    /// Multiplies two *independent* products `a0 · b0` and `a1 · b1`.
    ///
    /// Protocol ops (PKE encrypt, SHE plaintext multiply, sign/verify)
    /// contain pairs of products with no data dependency between them;
    /// routing them through this hook lets batch-forming backends pack
    /// both into the same hardware batch. The default implementation
    /// simply multiplies sequentially, so every existing backend keeps
    /// bit-identical behaviour.
    ///
    /// # Errors
    ///
    /// Same contract as [`PolyMultiplier::multiply`]; the first failing
    /// product's error is returned.
    fn multiply_pair(
        &self,
        a0: &Polynomial,
        b0: &Polynomial,
        a1: &Polynomial,
        b1: &Polynomial,
    ) -> Result<(Polynomial, Polynomial)> {
        Ok((self.multiply(a0, b0)?, self.multiply(a1, b1)?))
    }
}

/// The software NTT-based multiplier (Algorithm 1).
///
/// # Example
///
/// ```
/// use modmath::params::ParamSet;
/// use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
/// use ntt::poly::Polynomial;
///
/// # fn main() -> Result<(), ntt::Error> {
/// let params = ParamSet::for_degree(256)?;
/// let mult = NttMultiplier::new(&params)?;
/// let x = {
///     let mut c = vec![0u64; 256];
///     c[1] = 1;
///     Polynomial::from_coeffs(c, params.q)?
/// };
/// let x2 = mult.multiply(&x, &x)?;
/// assert_eq!(x2.coeff(2), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttMultiplier {
    tables: NttTables,
    /// Lazily built four-step plan for the segmented multiply path
    /// (plan construction walks `2n` root powers, so it only happens on
    /// first use).
    four_step: std::sync::OnceLock<fourstep::FourStepPlan>,
}

impl NttMultiplier {
    /// Builds a multiplier for the given parameter set.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures (bad degree, unfriendly
    /// modulus).
    pub fn new(params: &ParamSet) -> Result<Self> {
        Ok(NttMultiplier {
            tables: NttTables::new(params)?,
            four_step: std::sync::OnceLock::new(),
        })
    }

    /// Builds a multiplier for an explicit `(n, q)` pair.
    ///
    /// # Errors
    ///
    /// Same as [`NttMultiplier::new`].
    pub fn for_degree_modulus(n: usize, q: u64) -> Result<Self> {
        Ok(NttMultiplier {
            tables: NttTables::for_degree_modulus(n, q)?,
            four_step: std::sync::OnceLock::new(),
        })
    }

    /// The precomputed twiddle tables (shared with the PIM mapping).
    pub fn tables(&self) -> &NttTables {
        &self.tables
    }

    /// Forward negacyclic transform: returns `NTT(φ ⊙ a)` in natural
    /// order. Exposed so the frequency-domain representation can be
    /// cached across multiplications (C-INTERMEDIATE).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch.
    pub fn forward(&self, a: &Polynomial) -> Result<Vec<u64>> {
        let n = self.tables.degree();
        if a.degree_bound() != n {
            return Err(Error::InvalidDegree {
                n: a.degree_bound(),
            });
        }
        let q = self.tables.modulus();
        let phi = self.tables.phi_powers();
        let phi_shoup = self.tables.phi_powers_shoup();
        // Lazy hot path: the φ pre-scaling leaves values in [0, 2q),
        // which is exactly what the lazy kernel accepts, and the GS
        // kernel's bit-reversal permutation is folded into the same
        // pass as a scatter. One normalization at the end restores
        // canonical form.
        let bits = bitrev::log2_exact(n).expect("degree is a power of two");
        let mut data = vec![0u64; n];
        for (i, &c) in a.coeffs().iter().enumerate() {
            data[bitrev::reverse_bits(i, bits)] = shoup::mul_lazy(c, phi[i], phi_shoup[i], q);
        }
        gs::gs_kernel_lazy_in_place(
            &mut data,
            self.tables.omega_powers(),
            self.tables.omega_powers_shoup(),
            q,
        );
        shoup::normalize_slice(&mut data, q);
        Ok(data)
    }

    /// Inverse negacyclic transform of a frequency-domain vector:
    /// `φ̄ ⊙ INTT(spec)` with the `n⁻¹` folded in.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch.
    pub fn inverse(&self, mut spec: Vec<u64>) -> Result<Polynomial> {
        let n = self.tables.degree();
        if spec.len() != n {
            return Err(Error::InvalidDegree { n: spec.len() });
        }
        let q = self.tables.modulus();
        // Lazy inverse: kernel output stays in [0, 2q); the fused
        // φ^{-i}·n⁻¹ Shoup multiply performs the post-scaling and the
        // final normalization in one pass.
        bitrev::permute_in_place(&mut spec);
        gs::gs_kernel_lazy_in_place(
            &mut spec,
            self.tables.omega_inv_powers(),
            self.tables.omega_inv_powers_shoup(),
            q,
        );
        let fused = self.tables.phi_inv_n_inv_powers();
        let fused_shoup = self.tables.phi_inv_n_inv_powers_shoup();
        for (i, c) in spec.iter_mut().enumerate() {
            *c = shoup::mul(*c, fused[i], fused_shoup[i], q);
        }
        Polynomial::from_coeffs(spec, q)
    }

    /// Pointwise product of two frequency-domain vectors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch.
    pub fn pointwise(&self, a: &[u64], b: &[u64]) -> Result<Vec<u64>> {
        if a.len() != self.tables.degree() || b.len() != self.tables.degree() {
            return Err(Error::InvalidDegree { n: a.len() });
        }
        let q = self.tables.modulus();
        Ok(a.iter().zip(b).map(|(&x, &y)| zq::mul(x, y, q)).collect())
    }

    /// Batch forward transform over a flat buffer of stacked
    /// natural-order polynomials (`data.len()` a positive multiple of
    /// the degree), **in place**, leaving each block in the merged
    /// kernels' internal frequency domain: bit-reversed order, lazy
    /// `[0, 2q)` values.
    ///
    /// The batch kernels walk the twiddle tables once per stage for the
    /// whole batch, so B stacked transforms cost close to B× the inner
    /// loop of one — not B full table walks. The output layout is only
    /// meaningful to [`pointwise_batch`] / [`inverse_batch`]; use
    /// [`forward`] for cache-friendly natural-order spectra.
    ///
    /// [`pointwise_batch`]: NttMultiplier::pointwise_batch
    /// [`inverse_batch`]: NttMultiplier::inverse_batch
    /// [`forward`]: NttMultiplier::forward
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] when `data.len()` is not a
    /// positive multiple of the degree.
    pub fn forward_batch(&self, data: &mut [u64]) -> Result<()> {
        self.check_batch(data.len())?;
        merged::forward_lazy_batch_in_place(data, &self.tables);
        Ok(())
    }

    /// Batch inverse of [`forward_batch`]'s frequency domain: each block
    /// comes back in natural order, canonical, with `φ̄` and `n⁻¹`
    /// applied — the finished negacyclic coefficients.
    ///
    /// [`forward_batch`]: NttMultiplier::forward_batch
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] when `data.len()` is not a
    /// positive multiple of the degree.
    pub fn inverse_batch(&self, data: &mut [u64]) -> Result<()> {
        self.check_batch(data.len())?;
        merged::inverse_batch_in_place(data, &self.tables);
        Ok(())
    }

    /// Batch pointwise product in the merged frequency domain:
    /// `a[i] ← a[i]·b[i] mod q`, lazy in and out.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch or when the
    /// length is not a positive multiple of the degree.
    pub fn pointwise_batch(&self, a: &mut [u64], b: &[u64]) -> Result<()> {
        self.check_batch(a.len())?;
        if a.len() != b.len() {
            return Err(Error::InvalidDegree { n: b.len() });
        }
        merged::pointwise_lazy_in_place(a, b, self.tables.modulus());
        Ok(())
    }

    /// Batch-fused negacyclic multiply: `out[k] = a[k] · b[k]` for each
    /// stacked polynomial pair, walking every twiddle table once per
    /// stage across the whole batch. `a` and `b` are consumed as
    /// scratch (left in an unspecified state); `out` receives canonical
    /// natural-order products. No allocation.
    ///
    /// Returns the wall-clock [`BatchPhaseTiming`] split.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch or when the
    /// length is not a positive multiple of the degree.
    pub fn multiply_batch_into(
        &self,
        a: &mut [u64],
        b: &mut [u64],
        out: &mut [u64],
    ) -> Result<BatchPhaseTiming> {
        self.check_batch(a.len())?;
        if a.len() != b.len() || a.len() != out.len() {
            return Err(Error::InvalidDegree { n: b.len() });
        }
        let t0 = Instant::now();
        merged::forward_lazy_batch_in_place(a, &self.tables);
        merged::forward_lazy_batch_in_place(b, &self.tables);
        let t1 = Instant::now();
        merged::pointwise_lazy(a, b, out, self.tables.modulus());
        let t2 = Instant::now();
        merged::inverse_batch_in_place(out, &self.tables);
        let t3 = Instant::now();
        Ok(BatchPhaseTiming {
            transform_ns: (t1 - t0).as_nanos() as u64 + (t3 - t2).as_nanos() as u64,
            pointwise_ns: (t2 - t1).as_nanos() as u64,
        })
    }

    /// Allocating convenience wrapper around
    /// [`NttMultiplier::multiply_batch_into`] for `Polynomial` slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch between the
    /// operand slices or any operand and the configured degree.
    pub fn multiply_batch(&self, a: &[Polynomial], b: &[Polynomial]) -> Result<Vec<Polynomial>> {
        if a.len() != b.len() || a.is_empty() {
            return Err(Error::InvalidDegree { n: a.len() });
        }
        let n = self.tables.degree();
        let q = self.tables.modulus();
        for p in a.iter().chain(b) {
            if p.degree_bound() != n {
                return Err(Error::InvalidDegree {
                    n: p.degree_bound(),
                });
            }
        }
        let mut fa: Vec<u64> = a.iter().flat_map(|p| p.coeffs().iter().copied()).collect();
        let mut fb: Vec<u64> = b.iter().flat_map(|p| p.coeffs().iter().copied()).collect();
        let mut out = vec![0u64; fa.len()];
        self.multiply_batch_into(&mut fa, &mut fb, &mut out)?;
        out.chunks_exact(n)
            .map(|c| Polynomial::from_canonical_coeffs(c.to_vec(), q))
            .collect()
    }

    /// Segmented (four-step) negacyclic multiply: cache-blocked
    /// transposes plus in-cache row transforms instead of one in-place
    /// transform over the whole buffer. Bit-identical to
    /// [`PolyMultiplier::multiply`] (same root, exact arithmetic).
    ///
    /// The plan is built on first use and cached. See
    /// [`fourstep::FOUR_STEP_MIN_DEGREE`] for when this path is worth
    /// taking — on hosts whose L2 holds the operands, the merged
    /// in-place path measures faster at every paper degree, which is
    /// why the default `multiply` does not switch automatically.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on operand mismatch or a degree
    /// too small to split.
    pub fn multiply_segmented(&self, a: &Polynomial, b: &Polynomial) -> Result<Polynomial> {
        let n = self.tables.degree();
        if a.degree_bound() != n || b.degree_bound() != n {
            return Err(Error::InvalidDegree {
                n: a.degree_bound(),
            });
        }
        if self.four_step.get().is_none() {
            let plan = fourstep::FourStepPlan::new(&self.tables)?;
            let _ = self.four_step.set(plan);
        }
        let plan = self.four_step.get().expect("plan just installed");
        let mut fa = a.coeffs().to_vec();
        let mut fb = b.coeffs().to_vec();
        let mut scratch = vec![0u64; n];
        fourstep::multiply_into(plan, &self.tables, &mut fa, &mut fb, &mut scratch)?;
        Polynomial::from_canonical_coeffs(fa, self.tables.modulus())
    }

    fn check_batch(&self, len: usize) -> Result<()> {
        let n = self.tables.degree();
        if len == 0 || !len.is_multiple_of(n) {
            return Err(Error::InvalidDegree { n: len });
        }
        Ok(())
    }

    /// Pointwise product where `a` comes with precomputed Shoup
    /// companions (`a_shoup[i] = ⌊a[i]·2^64/q⌋`) — the fast path for
    /// cached operands, avoiding the `u128` remainder entirely.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] on a length mismatch.
    pub fn pointwise_with_shoup(&self, a: &[u64], a_shoup: &[u64], b: &[u64]) -> Result<Vec<u64>> {
        let n = self.tables.degree();
        if a.len() != n || a_shoup.len() != n || b.len() != n {
            return Err(Error::InvalidDegree { n: a.len() });
        }
        let q = self.tables.modulus();
        Ok(a.iter()
            .zip(a_shoup)
            .zip(b)
            .map(|((&x, &xs), &y)| shoup::mul(y, x, xs, q))
            .collect())
    }
}

impl PolyMultiplier for NttMultiplier {
    fn degree(&self) -> usize {
        self.tables.degree()
    }

    fn modulus(&self) -> u64 {
        self.tables.modulus()
    }

    fn multiply(&self, a: &Polynomial, b: &Polynomial) -> Result<Polynomial> {
        let n = self.tables.degree();
        if a.degree_bound() != n || b.degree_bound() != n {
            return Err(Error::InvalidDegree {
                n: a.degree_bound(),
            });
        }
        // Merged-twiddle pipeline: no φ-scaling passes, no bit-reversal
        // permutations — both spectra stay in the same bit-reversed lazy
        // domain, where the pointwise product commutes with the
        // permutation, so the canonical output is bit-identical to the
        // classic pipeline's.
        let mut fa = a.coeffs().to_vec();
        let mut fb = b.coeffs().to_vec();
        merged::forward_lazy_in_place(&mut fa, &self.tables);
        merged::forward_lazy_in_place(&mut fb, &self.tables);
        merged::pointwise_lazy_in_place(&mut fa, &fb, self.tables.modulus());
        merged::inverse_in_place(&mut fa, &self.tables);
        Polynomial::from_canonical_coeffs(fa, self.tables.modulus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schoolbook;
    use proptest::prelude::*;

    fn mult(n: usize) -> NttMultiplier {
        let p = ParamSet::for_degree(n).unwrap();
        NttMultiplier::new(&p).unwrap()
    }

    fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
        // Simple deterministic LCG; tests don't need crypto randomness.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let coeffs: Vec<u64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect();
        Polynomial::from_coeffs(coeffs, q).unwrap()
    }

    #[test]
    fn matches_schoolbook_small_degrees() {
        for (n, q) in [(4usize, 7681u64), (8, 7681), (16, 12289), (32, 12289)] {
            let m = NttMultiplier::for_degree_modulus(n, q).unwrap();
            for seed in 0..5 {
                let a = rand_poly(n, q, seed * 2 + 1);
                let b = rand_poly(n, q, seed * 2 + 2);
                assert_eq!(
                    m.multiply(&a, &b).unwrap(),
                    schoolbook::multiply(&a, &b).unwrap(),
                    "n = {n}, seed = {seed}"
                );
            }
        }
    }

    #[test]
    fn matches_schoolbook_paper_degrees() {
        for n in [256usize, 512, 1024] {
            let m = mult(n);
            let q = m.modulus();
            let a = rand_poly(n, q, 11);
            let b = rand_poly(n, q, 13);
            assert_eq!(
                m.multiply(&a, &b).unwrap(),
                schoolbook::multiply(&a, &b).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn he_degrees_roundtrip() {
        // Schoolbook at 32k is too slow; validate via x·x^k identities
        // and forward/inverse roundtrips instead.
        for n in [2048usize, 32768] {
            let m = mult(n);
            let q = m.modulus();
            let a = rand_poly(n, q, 17);
            let spec = m.forward(&a).unwrap();
            let back = m.inverse(spec).unwrap();
            assert_eq!(back, a, "n = {n}");

            // x^{n/2} · x^{n/2} = x^n = −1.
            let mut h = vec![0u64; n];
            h[n / 2] = 1;
            let h = Polynomial::from_coeffs(h, q).unwrap();
            let sq = m.multiply(&h, &h).unwrap();
            assert_eq!(sq.coeff(0), q - 1, "n = {n}");
            assert!(sq.coeffs()[1..].iter().all(|&c| c == 0), "n = {n}");
        }
    }

    #[test]
    fn segmented_multiply_bit_identical_to_default() {
        for n in [64usize, 256, 1024] {
            let m = mult(n);
            let q = m.modulus();
            let a = rand_poly(n, q, 21);
            let b = rand_poly(n, q, 23);
            let merged = m.multiply(&a, &b).unwrap();
            let segmented = m.multiply_segmented(&a, &b).unwrap();
            assert_eq!(segmented, merged, "n = {n}");
            // Second call exercises the cached plan.
            assert_eq!(m.multiply_segmented(&a, &b).unwrap(), merged, "n = {n}");
        }
    }

    #[test]
    fn multiply_by_one() {
        let m = mult(256);
        let q = m.modulus();
        let a = rand_poly(256, q, 3);
        let mut one = vec![0u64; 256];
        one[0] = 1;
        let one = Polynomial::from_coeffs(one, q).unwrap();
        assert_eq!(m.multiply(&a, &one).unwrap(), a);
    }

    #[test]
    fn degree_mismatch_errors() {
        let m = mult(256);
        let a = Polynomial::zero(128, m.modulus()).unwrap();
        let b = Polynomial::zero(256, m.modulus()).unwrap();
        assert!(m.multiply(&a, &b).is_err());
        assert!(m.forward(&a).is_err());
        assert!(m.inverse(vec![0; 128]).is_err());
        assert!(m.pointwise(&[0; 128], &[0; 256]).is_err());
    }

    #[test]
    fn trait_object_usable() {
        let m = mult(256);
        let dyn_mult: &dyn PolyMultiplier = &m;
        assert_eq!(dyn_mult.degree(), 256);
        assert_eq!(dyn_mult.modulus(), 7681);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_matches_schoolbook(
            a in proptest::collection::vec(0u64..12289, 64),
            b in proptest::collection::vec(0u64..12289, 64),
        ) {
            let m = NttMultiplier::for_degree_modulus(64, 12289).unwrap();
            let pa = Polynomial::from_coeffs(a, 12289).unwrap();
            let pb = Polynomial::from_coeffs(b, 12289).unwrap();
            prop_assert_eq!(
                m.multiply(&pa, &pb).unwrap(),
                schoolbook::multiply(&pa, &pb).unwrap()
            );
        }

        #[test]
        fn prop_frequency_domain_is_multiplicative(
            a in proptest::collection::vec(0u64..7681, 32),
            b in proptest::collection::vec(0u64..7681, 32),
        ) {
            // forward(a·b) == forward(a) ⊙ forward(b)
            let m = NttMultiplier::for_degree_modulus(32, 7681).unwrap();
            let pa = Polynomial::from_coeffs(a, 7681).unwrap();
            let pb = Polynomial::from_coeffs(b, 7681).unwrap();
            let prod = m.multiply(&pa, &pb).unwrap();
            let lhs = m.forward(&prod).unwrap();
            let rhs = m.pointwise(&m.forward(&pa).unwrap(), &m.forward(&pb).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }
    }
}

//! Polynomials over `Z_q[x]/(x^n + 1)`.

use modmath::{zq, Error};

/// A polynomial with coefficients in `Z_q`, of degree below `n`
/// (`n` a power of two), i.e. an element of `Z_q[x]/(x^n + 1)`.
///
/// Coefficients are stored in natural order: `coeffs[i]` is the
/// coefficient of `x^i`, always canonical in `[0, q)`.
///
/// # Example
///
/// ```
/// use ntt::poly::Polynomial;
///
/// # fn main() -> Result<(), ntt::Error> {
/// let p = Polynomial::from_coeffs(vec![3, 1, 4, 1], 17)?;
/// assert_eq!(p.coeff(2), 4);
/// let q = p.clone() + p.clone();
/// assert_eq!(q.coeff(2), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polynomial {
    coeffs: Vec<u64>,
    q: u64,
}

impl Polynomial {
    /// The zero polynomial of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] when `n` is not a power of two
    /// of at least 2.
    pub fn zero(n: usize, q: u64) -> Result<Self, Error> {
        if !n.is_power_of_two() || n < 2 {
            return Err(Error::InvalidDegree { n });
        }
        Ok(Polynomial {
            coeffs: vec![0; n],
            q,
        })
    }

    /// Builds a polynomial from coefficients, reducing each into `[0, q)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] when the length is not a power of
    /// two of at least 2.
    pub fn from_coeffs(mut coeffs: Vec<u64>, q: u64) -> Result<Self, Error> {
        let n = coeffs.len();
        if !n.is_power_of_two() || n < 2 {
            return Err(Error::InvalidDegree { n });
        }
        for c in &mut coeffs {
            *c %= q;
        }
        Ok(Polynomial { coeffs, q })
    }

    /// Builds a polynomial from coefficients that are already canonical
    /// (`< q`), skipping the reduction pass of [`from_coeffs`].
    ///
    /// For hot paths (e.g. wrapping engine output, which is canonical
    /// by construction) where the O(n) `%` sweep is measurable.
    /// Canonicity is the caller's contract — debug builds assert it.
    ///
    /// [`from_coeffs`]: Polynomial::from_coeffs
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] when the length is not a power
    /// of two of at least 2.
    pub fn from_canonical_coeffs(coeffs: Vec<u64>, q: u64) -> Result<Self, Error> {
        let n = coeffs.len();
        if !n.is_power_of_two() || n < 2 {
            return Err(Error::InvalidDegree { n });
        }
        debug_assert!(
            coeffs.iter().all(|&c| c < q),
            "from_canonical_coeffs requires coefficients in [0, q)"
        );
        Ok(Polynomial { coeffs, q })
    }

    /// Builds a polynomial from signed coefficients (e.g. sampled noise),
    /// mapping negatives to `q − |c|`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] when the length is invalid.
    pub fn from_signed_coeffs(coeffs: &[i64], q: u64) -> Result<Self, Error> {
        let mapped = coeffs
            .iter()
            .map(|&c| {
                let r = c.rem_euclid(q as i64);
                r as u64
            })
            .collect();
        Polynomial::from_coeffs(mapped, q)
    }

    /// The ring degree `n` (number of coefficients; all polynomials in
    /// the ring have degree strictly below this).
    #[inline]
    pub fn degree_bound(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The coefficient of `x^i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[inline]
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs[i]
    }

    /// All coefficients in natural order.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable access to the coefficients (kept canonical by the caller).
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consumes the polynomial, returning its coefficient vector.
    #[inline]
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    /// Maps each coefficient to its centered representative in
    /// `(−q/2, q/2]`, useful for decoding noisy RLWE payloads.
    pub fn to_centered(&self) -> Vec<i64> {
        self.coeffs
            .iter()
            .map(|&c| {
                if c > self.q / 2 {
                    c as i64 - self.q as i64
                } else {
                    c as i64
                }
            })
            .collect()
    }

    /// Multiplies every coefficient by the scalar `s`.
    pub fn scale(&self, s: u64) -> Polynomial {
        let s = s % self.q;
        Polynomial {
            coeffs: self.coeffs.iter().map(|&c| zq::mul(c, s, self.q)).collect(),
            q: self.q,
        }
    }

    /// True if every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Polynomial(n = {}, q = {}, [{} …])",
            self.coeffs.len(),
            self.q,
            self.coeffs
                .iter()
                .take(4)
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::ops::Add for Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: Polynomial) -> Polynomial {
        assert_eq!(self.q, rhs.q, "mismatched moduli");
        assert_eq!(self.coeffs.len(), rhs.coeffs.len(), "mismatched degrees");
        let q = self.q;
        Polynomial {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(&a, &b)| zq::add(a, b, q))
                .collect(),
            q,
        }
    }
}

impl std::ops::Sub for Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: Polynomial) -> Polynomial {
        assert_eq!(self.q, rhs.q, "mismatched moduli");
        assert_eq!(self.coeffs.len(), rhs.coeffs.len(), "mismatched degrees");
        let q = self.q;
        Polynomial {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(&a, &b)| zq::sub(a, b, q))
                .collect(),
            q,
        }
    }
}

impl std::ops::Neg for Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        let q = self.q;
        Polynomial {
            coeffs: self.coeffs.iter().map(|&c| zq::neg(c, q)).collect(),
            q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let p = Polynomial::from_coeffs(vec![20, 17, 0, 1], 17).unwrap();
        assert_eq!(p.coeffs(), &[3, 0, 0, 1]);
    }

    #[test]
    fn invalid_lengths() {
        assert!(Polynomial::zero(0, 17).is_err());
        assert!(Polynomial::zero(1, 17).is_err());
        assert!(Polynomial::zero(3, 17).is_err());
        assert!(Polynomial::from_coeffs(vec![1, 2, 3], 17).is_err());
    }

    #[test]
    fn canonical_construction_skips_reduction() {
        let p = Polynomial::from_canonical_coeffs(vec![3, 0, 16, 1], 17).unwrap();
        assert_eq!(p.coeffs(), &[3, 0, 16, 1]);
        assert!(Polynomial::from_canonical_coeffs(vec![1, 2, 3], 17).is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "requires coefficients in [0, q)")]
    fn canonical_construction_asserts_canonicity() {
        let _ = Polynomial::from_canonical_coeffs(vec![17, 0, 0, 0], 17);
    }

    #[test]
    fn signed_construction() {
        let p = Polynomial::from_signed_coeffs(&[-1, -17, 2, 0], 17).unwrap();
        assert_eq!(p.coeffs(), &[16, 0, 2, 0]);
    }

    #[test]
    fn centered_roundtrip() {
        let p = Polynomial::from_signed_coeffs(&[-3, 3, 0, -8], 17).unwrap();
        assert_eq!(p.to_centered(), vec![-3, 3, 0, -8]);
    }

    #[test]
    fn add_sub_neg() {
        let q = 17;
        let a = Polynomial::from_coeffs(vec![1, 2, 3, 4], q).unwrap();
        let b = Polynomial::from_coeffs(vec![16, 16, 16, 16], q).unwrap();
        let s = a.clone() + b.clone();
        assert_eq!(s.coeffs(), &[0, 1, 2, 3]);
        let d = a.clone() - b.clone();
        assert_eq!(d.coeffs(), &[2, 3, 4, 5]);
        let n = -a.clone();
        assert_eq!(n.coeffs(), &[16, 15, 14, 13]);
        assert!((a.clone() - a).is_zero());
    }

    #[test]
    fn scale_matches_repeated_add() {
        let q = 17;
        let a = Polynomial::from_coeffs(vec![1, 2, 3, 4], q).unwrap();
        let tripled = a.scale(3);
        assert_eq!(tripled.coeffs(), &[3, 6, 9, 12]);
        assert_eq!(a.scale(0).coeffs(), &[0, 0, 0, 0]);
        assert_eq!(a.scale(q).coeffs(), &[0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "mismatched moduli")]
    fn add_mixed_moduli_panics() {
        let a = Polynomial::zero(4, 17).unwrap();
        let b = Polynomial::zero(4, 19).unwrap();
        let _ = a + b;
    }

    #[test]
    fn display_is_nonempty() {
        let p = Polynomial::zero(4, 17).unwrap();
        assert!(!format!("{p}").is_empty());
    }
}

//! Merged-twiddle negacyclic transforms — the host-side hot path.
//!
//! The classic Algorithm-1 pipeline spends two full passes per operand
//! on the `φ ⊙ a` pre-scaling (plus a bit-reversal permutation) and one
//! on the `φ̄` post-scaling. The merged formulation (Longa–Naehrig
//! style) folds the `φ` powers *into the butterfly twiddles*:
//!
//! * **Forward**: Cooley–Tukey butterflies over the
//!   [`NttTables::phi_powers_bitrev`] table (`ψ^{rev(i)}`), natural-order
//!   input, **bit-reversed** lazy output. No pre-scaling pass, no
//!   permutation.
//! * **Inverse**: Gentleman–Sande butterflies over
//!   [`NttTables::phi_inv_powers_bitrev`], bit-reversed lazy input,
//!   natural-order **canonical** output; only the `n⁻¹` factor survives
//!   as a final fused scale-and-normalize pass.
//!
//! Pointwise products commute with any fixed permutation, so a
//! multiply that keeps *both* spectra in the same bit-reversed domain
//! produces exactly the canonical product of the natural-order pipeline
//! — bit-identical, since canonical representatives are unique.
//!
//! The kernels share the shape of [`crate::gs`]: branch-free lazy
//! `[0, 2q)` butterflies, radix-4 (merged two-stage) passes, a
//! half-width 32×32→64 multiply path for `q < 2^30`, and
//! `#[target_feature]`-recompiled copies dispatched at runtime so the
//! autovectorizer can use AVX2/AVX-512 without a portability cost.
//! Batch entry points run stage-outer/polynomial-inner so one
//! twiddle-table walk serves the whole batch.
//!
//! # Lazy bounds
//!
//! Butterfly inputs are `< 2q`. The CT butterfly computes
//! `v = w·b mod⁻ 2q` then `a + v < 4q` and `a + 2q − v < 4q`, both
//! masked back to `< 2q`; the GS butterfly sums to `< 4q` (masked) and
//! feeds `a + 2q − b < 4q` into a Shoup multiply. No intermediate ever
//! reaches `4q`, which keeps the half-width path inside `u32` range
//! (`4q < 2^32`) and the wide path inside `u64` for `q ≤ 2^62`.

use modmath::roots::NttTables;
use modmath::{barrett, bitrev, shoup};

/// One lazy modular multiply strategy (`w` fixed with Shoup companion).
trait LazyMul: Copy {
    fn q(self) -> u64;
    fn two_q(self) -> u64;
    /// `w · t mod q` in `[0, 2q)` for `t < 4q`.
    fn mul(self, t: u64, w: u64, ws: u64) -> u64;
}

/// Full-width (`u128`-producing) Shoup multiply, any `q ≤ 2^62`.
#[derive(Clone, Copy)]
struct WideMul {
    q: u64,
    two_q: u64,
}

impl LazyMul for WideMul {
    #[inline(always)]
    fn q(self) -> u64 {
        self.q
    }
    #[inline(always)]
    fn two_q(self) -> u64 {
        self.two_q
    }
    #[inline(always)]
    fn mul(self, t: u64, w: u64, ws: u64) -> u64 {
        shoup::mul_lazy(t, w, ws, self.q)
    }
}

/// Half-width 32×32→64 Shoup multiply for `q < 2^30` (`pmuludq`-friendly).
#[derive(Clone, Copy)]
struct HalfMul {
    q: u64,
    two_q: u64,
}

impl LazyMul for HalfMul {
    #[inline(always)]
    fn q(self) -> u64 {
        self.q
    }
    #[inline(always)]
    fn two_q(self) -> u64 {
        self.two_q
    }
    #[inline(always)]
    fn mul(self, t: u64, w: u64, ws: u64) -> u64 {
        shoup::mul_lazy_half(t, w, ws >> 32, self.q)
    }
}

/// CT butterfly on lazy values: `(a + w·b, a − w·b)`, both `< 2q`.
#[inline(always)]
fn ct_bfly<M: LazyMul>(a: u64, b: u64, w: u64, ws: u64, m: M) -> (u64, u64) {
    debug_assert!(a < m.two_q() && b < m.two_q(), "lazy inputs must be < 2q");
    let v = m.mul(b, w, ws);
    (
        shoup::lazy_sub_2q(a + v, m.two_q()),
        shoup::lazy_sub_2q(a + m.two_q() - v, m.two_q()),
    )
}

/// GS butterfly on lazy values: `(a + b, w·(a − b))`, both `< 2q`.
#[inline(always)]
fn gs_bfly<M: LazyMul>(a: u64, b: u64, w: u64, ws: u64, m: M) -> (u64, u64) {
    debug_assert!(a < m.two_q() && b < m.two_q(), "lazy inputs must be < 2q");
    (
        shoup::lazy_sub_2q(a + b, m.two_q()),
        m.mul(a + m.two_q() - b, w, ws),
    )
}

/// Merged forward stages `m` and `2m` in one radix-4 pass.
///
/// Chunk `c` (one stage-`m` block of `4d` coefficients, `d = n/(4m)`)
/// uses `tw[m + c]` for the distance-`2d` butterflies and
/// `tw[2m + 2c]`, `tw[2m + 2c + 1]` for the distance-`d` butterflies of
/// its two half-blocks.
#[inline(always)]
fn fwd_radix4<M: LazyMul>(data: &mut [u64], tw: &[u64], tws: &[u64], m_blocks: usize, mul: M) {
    let n = data.len();
    let d = n / (4 * m_blocks);
    for (c, chunk) in data.chunks_exact_mut(4 * d).enumerate() {
        let (w0, ws0) = (tw[m_blocks + c], tws[m_blocks + c]);
        let (w1, ws1) = (tw[2 * m_blocks + 2 * c], tws[2 * m_blocks + 2 * c]);
        let (w2, ws2) = (tw[2 * m_blocks + 2 * c + 1], tws[2 * m_blocks + 2 * c + 1]);
        let (lo, hi) = chunk.split_at_mut(2 * d);
        let (q0, q1) = lo.split_at_mut(d);
        let (q2, q3) = hi.split_at_mut(d);
        for (((x0, x1), x2), x3) in q0
            .iter_mut()
            .zip(q1.iter_mut())
            .zip(q2.iter_mut())
            .zip(q3.iter_mut())
        {
            // Stage m (distance 2d): pairs (q0, q2) and (q1, q3).
            let (a0, a2) = ct_bfly(*x0, *x2, w0, ws0, mul);
            let (a1, a3) = ct_bfly(*x1, *x3, w0, ws0, mul);
            // Stage 2m (distance d): pairs (q0, q1) and (q2, q3).
            let (y0, y1) = ct_bfly(a0, a1, w1, ws1, mul);
            let (y2, y3) = ct_bfly(a2, a3, w2, ws2, mul);
            *x0 = y0;
            *x1 = y1;
            *x2 = y2;
            *x3 = y3;
        }
    }
}

/// One forward CT stage with `m_blocks` blocks (radix-2).
#[inline(always)]
fn fwd_radix2<M: LazyMul>(data: &mut [u64], tw: &[u64], tws: &[u64], m_blocks: usize, mul: M) {
    let n = data.len();
    let t = n / (2 * m_blocks);
    for (c, chunk) in data.chunks_exact_mut(2 * t).enumerate() {
        let (w, ws) = (tw[m_blocks + c], tws[m_blocks + c]);
        let (lo, hi) = chunk.split_at_mut(t);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (s, d) = ct_bfly(*a, *b, w, ws, mul);
            *a = s;
            *b = d;
        }
    }
}

/// Merged inverse stages with `h` then `h/2` blocks in one radix-4 pass.
///
/// Chunk `c` (`4t` coefficients, `t = n/(2h)`) covers the stage-`h`
/// blocks `2c`, `2c+1` (`tw[h + 2c]`, `tw[h + 2c + 1]`) and the
/// stage-`h/2` block `c` (`tw[h/2 + c]`).
#[inline(always)]
fn inv_radix4<M: LazyMul>(data: &mut [u64], tw: &[u64], tws: &[u64], h_blocks: usize, mul: M) {
    let n = data.len();
    let t = n / (2 * h_blocks);
    for (c, chunk) in data.chunks_exact_mut(4 * t).enumerate() {
        let (w0, ws0) = (tw[h_blocks + 2 * c], tws[h_blocks + 2 * c]);
        let (w1, ws1) = (tw[h_blocks + 2 * c + 1], tws[h_blocks + 2 * c + 1]);
        let (w2, ws2) = (tw[h_blocks / 2 + c], tws[h_blocks / 2 + c]);
        let (lo, hi) = chunk.split_at_mut(2 * t);
        let (q0, q1) = lo.split_at_mut(t);
        let (q2, q3) = hi.split_at_mut(t);
        for (((x0, x1), x2), x3) in q0
            .iter_mut()
            .zip(q1.iter_mut())
            .zip(q2.iter_mut())
            .zip(q3.iter_mut())
        {
            // Stage h (distance t): pairs (q0, q1) and (q2, q3).
            let (a0, a1) = gs_bfly(*x0, *x1, w0, ws0, mul);
            let (a2, a3) = gs_bfly(*x2, *x3, w1, ws1, mul);
            // Stage h/2 (distance 2t): pairs (q0, q2) and (q1, q3).
            let (y0, y2) = gs_bfly(a0, a2, w2, ws2, mul);
            let (y1, y3) = gs_bfly(a1, a3, w2, ws2, mul);
            *x0 = y0;
            *x1 = y1;
            *x2 = y2;
            *x3 = y3;
        }
    }
}

/// One inverse GS stage with `h_blocks` blocks (radix-2).
#[inline(always)]
fn inv_radix2<M: LazyMul>(data: &mut [u64], tw: &[u64], tws: &[u64], h_blocks: usize, mul: M) {
    let n = data.len();
    let t = n / (2 * h_blocks);
    for (c, chunk) in data.chunks_exact_mut(2 * t).enumerate() {
        let (w, ws) = (tw[h_blocks + c], tws[h_blocks + c]);
        let (lo, hi) = chunk.split_at_mut(t);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (s, d) = gs_bfly(*a, *b, w, ws, mul);
            *a = s;
            *b = d;
        }
    }
}

/// Forward merged transform of every stacked polynomial, stage-outer.
///
/// When `log2 n` is odd the leftover radix-2 stage runs *first*
/// (`m = 1`: one block of length `n`, a single twiddle — the most
/// vectorizable stage); radix-4 pairs cover the rest.
#[inline(always)]
fn run_forward<M: LazyMul>(
    data: &mut [u64],
    n: usize,
    tw: &[u64],
    tws: &[u64],
    log_n: u32,
    mul: M,
) {
    let mut m = 1usize;
    if log_n % 2 == 1 {
        for poly in data.chunks_exact_mut(n) {
            fwd_radix2(poly, tw, tws, m, mul);
        }
        m = 2;
    }
    while m < n {
        for poly in data.chunks_exact_mut(n) {
            fwd_radix4(poly, tw, tws, m, mul);
        }
        m *= 4;
    }
}

/// Inverse merged transform stages (no final scale), stage-outer.
///
/// The leftover radix-2 stage (odd `log2 n`) is the last one
/// (`h = 1`: one block of length `n`), mirroring the forward direction.
#[inline(always)]
fn run_inverse<M: LazyMul>(data: &mut [u64], n: usize, tw: &[u64], tws: &[u64], mul: M) {
    let mut h = n / 2;
    while h >= 2 {
        for poly in data.chunks_exact_mut(n) {
            inv_radix4(poly, tw, tws, h, mul);
        }
        h /= 4;
    }
    if h == 1 {
        for poly in data.chunks_exact_mut(n) {
            inv_radix2(poly, tw, tws, 1, mul);
        }
    }
}

/// Fused `n⁻¹` scale and normalization: lazy in, canonical out,
/// branch-free.
#[inline(always)]
fn scale_n_inv<M: LazyMul>(data: &mut [u64], n_inv: u64, n_inv_shoup: u64, mul: M) {
    let q = mul.q();
    for c in data.iter_mut() {
        let r = mul.mul(*c, n_inv, n_inv_shoup);
        let mask = ((r >= q) as u64).wrapping_neg();
        *c = r - (q & mask);
    }
}

/// Direction selector for the dispatched driver.
#[derive(Clone, Copy)]
enum Dir {
    Forward,
    Inverse,
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_dir<M: LazyMul>(
    dir: Dir,
    data: &mut [u64],
    n: usize,
    tw: &[u64],
    tws: &[u64],
    log_n: u32,
    n_inv: u64,
    n_inv_shoup: u64,
    mul: M,
) {
    match dir {
        Dir::Forward => run_forward(data, n, tw, tws, log_n, mul),
        Dir::Inverse => {
            run_inverse(data, n, tw, tws, mul);
            scale_n_inv(data, n_inv, n_inv_shoup, mul);
        }
    }
}

/// Runtime-dispatched compilations of the half-width driver (see
/// [`crate::gs`] for the rationale).
mod simd {
    use super::{run_dir, Dir, HalfMul};

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn run_dir_avx512(
        dir: Dir,
        data: &mut [u64],
        n: usize,
        tw: &[u64],
        tws: &[u64],
        log_n: u32,
        n_inv: u64,
        n_inv_shoup: u64,
        mul: HalfMul,
    ) {
        run_dir(dir, data, n, tw, tws, log_n, n_inv, n_inv_shoup, mul);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn run_dir_avx2(
        dir: Dir,
        data: &mut [u64],
        n: usize,
        tw: &[u64],
        tws: &[u64],
        log_n: u32,
        n_inv: u64,
        n_inv_shoup: u64,
        mul: HalfMul,
    ) {
        run_dir(dir, data, n, tw, tws, log_n, n_inv, n_inv_shoup, mul);
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn run_dir_half(
        dir: Dir,
        data: &mut [u64],
        n: usize,
        tw: &[u64],
        tws: &[u64],
        log_n: u32,
        n_inv: u64,
        n_inv_shoup: u64,
        mul: HalfMul,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                // SAFETY: feature presence checked at runtime just above.
                unsafe { run_dir_avx512(dir, data, n, tw, tws, log_n, n_inv, n_inv_shoup, mul) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence checked at runtime just above.
                unsafe { run_dir_avx2(dir, data, n, tw, tws, log_n, n_inv, n_inv_shoup, mul) };
                return;
            }
        }
        run_dir(dir, data, n, tw, tws, log_n, n_inv, n_inv_shoup, mul);
    }
}

fn dispatch(dir: Dir, data: &mut [u64], n: usize, tables: &NttTables) {
    let q = tables.modulus();
    let two_q = q << 1;
    assert_eq!(n, tables.degree(), "table/degree mismatch");
    assert!(
        !data.is_empty() && data.len().is_multiple_of(n),
        "batch buffer must be a positive multiple of n"
    );
    let log_n = bitrev::log2_exact(n).expect("degree is a power of two");
    debug_assert!(data.iter().all(|&c| c < two_q), "inputs must be < 2q");
    let (tw, tws) = match dir {
        Dir::Forward => (tables.phi_powers_bitrev(), tables.phi_powers_bitrev_shoup()),
        Dir::Inverse => (
            tables.phi_inv_powers_bitrev(),
            tables.phi_inv_powers_bitrev_shoup(),
        ),
    };
    let (n_inv, n_inv_shoup) = (tables.n_inv(), tables.n_inv_shoup());
    if q < shoup::HALF_MODULUS_LIMIT {
        simd::run_dir_half(
            dir,
            data,
            n,
            tw,
            tws,
            log_n,
            n_inv,
            n_inv_shoup,
            HalfMul { q, two_q },
        );
    } else {
        run_dir(
            dir,
            data,
            n,
            tw,
            tws,
            log_n,
            n_inv,
            n_inv_shoup,
            WideMul { q, two_q },
        );
    }
}

/// Forward merged negacyclic transform in place: natural-order input
/// (`< 2q`; canonical qualifies), **bit-reversed** lazy output `< 2q`.
///
/// The output is `NTT(φ ⊙ a)` with spectrum value `X[k]` stored at index
/// `rev(k)`; normalizing and permuting yields exactly
/// `NttMultiplier::forward`'s result.
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn forward_lazy_in_place(data: &mut [u64], tables: &NttTables) {
    dispatch(Dir::Forward, data, tables.degree(), tables);
}

/// Batch forward: every `n`-length block of `data` is one independent
/// natural-order input, transformed as in [`forward_lazy_in_place`] but
/// stage-outer across the whole batch (one twiddle walk per batch).
///
/// # Panics
///
/// Panics if `data.len()` is not a positive multiple of
/// `tables.degree()`.
pub fn forward_lazy_batch_in_place(data: &mut [u64], tables: &NttTables) {
    dispatch(Dir::Forward, data, tables.degree(), tables);
}

/// Inverse merged negacyclic transform in place: bit-reversed lazy input
/// (`< 2q`), natural-order **canonical** output — the full
/// `φ̄ ⊙ INTT(·)` with `n⁻¹` folded into the final fused pass.
///
/// # Panics
///
/// Panics if `data.len() != tables.degree()`.
pub fn inverse_in_place(data: &mut [u64], tables: &NttTables) {
    dispatch(Dir::Inverse, data, tables.degree(), tables);
}

/// Batch inverse: every `n`-length block is one independent bit-reversed
/// lazy spectrum, inverted as in [`inverse_in_place`], stage-outer.
///
/// # Panics
///
/// Panics if `data.len()` is not a positive multiple of
/// `tables.degree()`.
pub fn inverse_batch_in_place(data: &mut [u64], tables: &NttTables) {
    dispatch(Dir::Inverse, data, tables.degree(), tables);
}

/// Lazy pointwise product `out[i] = a[i]·b[i] mod q ∈ [0, 2q)` for lazy
/// operands (`< 2q`).
///
/// For `q < 2^31` this is a Barrett multiply with the precomputed
/// `µ = ⌊2^64/q⌋` — no `u128` remainder. Larger moduli fall back to
/// normalizing the operands and a `u128` widening multiply.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn pointwise_lazy(a: &[u64], b: &[u64], out: &mut [u64], q: u64) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "length mismatch"
    );
    if q < 1 << 31 {
        let mu = barrett::precompute_mu(q);
        for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = barrett::mul_lazy_mu(x, y, mu, q);
        }
    } else {
        for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()) {
            let x = shoup::reduce_2q(x, q);
            let y = shoup::reduce_2q(y, q);
            *o = ((x as u128 * y as u128) % q as u128) as u64;
        }
    }
}

/// In-place variant of [`pointwise_lazy`]: `a[i] ← a[i]·b[i] mod q`,
/// lazy in and out. Saves the third buffer in multiply pipelines.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn pointwise_lazy_in_place(a: &mut [u64], b: &[u64], q: u64) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if q < 1 << 31 {
        let mu = barrett::precompute_mu(q);
        for (x, &y) in a.iter_mut().zip(b) {
            *x = barrett::mul_lazy_mu(*x, y, mu, q);
        }
    } else {
        for (x, &y) in a.iter_mut().zip(b) {
            let xc = shoup::reduce_2q(*x, q);
            let yc = shoup::reduce_2q(y, q);
            *x = ((xc as u128 * yc as u128) % q as u128) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::zq;

    fn tables(n: usize, q: u64) -> NttTables {
        NttTables::for_degree_modulus(n, q).unwrap()
    }

    fn lcg(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect()
    }

    /// The natural-order reference spectrum via the existing pipeline:
    /// `NTT(φ ⊙ a)`, canonical.
    fn reference_forward(a: &[u64], t: &NttTables) -> Vec<u64> {
        let q = t.modulus();
        let mut data: Vec<u64> = a
            .iter()
            .enumerate()
            .map(|(i, &c)| zq::mul(c, t.phi_powers()[i], q))
            .collect();
        crate::gs::forward(&mut data, t);
        data
    }

    #[test]
    fn merged_forward_matches_reference_spectrum() {
        for (n, q) in [
            (2usize, 7681u64),
            (4, 7681),
            (8, 7681),
            (16, 12289),
            (64, 12289),
            (256, 786433),
            (512, 786433),
        ] {
            let t = tables(n, q);
            let a = lcg(n, q, 42);
            let reference = reference_forward(&a, &t);

            let mut merged = a.clone();
            forward_lazy_in_place(&mut merged, &t);
            assert!(merged.iter().all(|&c| c < 2 * q), "lazy outputs < 2q");
            shoup::normalize_slice(&mut merged, q);
            bitrev::permute_in_place(&mut merged);
            assert_eq!(merged, reference, "n = {n}, q = {q}");
        }
    }

    #[test]
    fn merged_forward_wide_path_matches_reference() {
        // A modulus above the half-width limit exercises WideMul.
        let n = 64usize;
        let mut q = (1u64 << 62) - ((1u64 << 62) - 1) % (2 * n as u64);
        while !modmath::primes::is_prime(q) {
            q -= 2 * n as u64;
        }
        assert!(q >= shoup::HALF_MODULUS_LIMIT);
        let t = tables(n, q);
        let a = lcg(n, q, 7);
        let reference = reference_forward(&a, &t);
        let mut merged = a.clone();
        forward_lazy_in_place(&mut merged, &t);
        shoup::normalize_slice(&mut merged, q);
        bitrev::permute_in_place(&mut merged);
        assert_eq!(merged, reference);
    }

    #[test]
    fn merged_inverse_undoes_merged_forward() {
        for (n, q) in [(4usize, 7681u64), (8, 7681), (64, 12289), (1024, 786433)] {
            let t = tables(n, q);
            let a = lcg(n, q, 5);
            let mut data = a.clone();
            forward_lazy_in_place(&mut data, &t);
            inverse_in_place(&mut data, &t);
            assert_eq!(data, a, "n = {n}, q = {q}");
        }
    }

    #[test]
    fn merged_inverse_output_is_canonical() {
        let n = 256usize;
        let q = 786433u64;
        let t = tables(n, q);
        // Feed worst-case lazy inputs (just below 2q).
        let mut data: Vec<u64> = (0..n as u64).map(|i| 2 * q - 1 - (i % 7)).collect();
        inverse_in_place(&mut data, &t);
        assert!(data.iter().all(|&c| c < q), "canonical outputs");
    }

    #[test]
    fn batch_matches_sequential_transforms() {
        let n = 128usize;
        let q = 12289u64;
        let t = tables(n, q);
        for b in 1..=4usize {
            let flat: Vec<u64> = lcg(b * n, q, b as u64 + 1);
            let mut batch = flat.clone();
            forward_lazy_batch_in_place(&mut batch, &t);
            let mut seq = flat.clone();
            for poly in seq.chunks_exact_mut(n) {
                forward_lazy_in_place(poly, &t);
            }
            assert_eq!(batch, seq, "forward b = {b}");

            let mut batch_inv = batch.clone();
            inverse_batch_in_place(&mut batch_inv, &t);
            let mut seq_inv = seq.clone();
            for poly in seq_inv.chunks_exact_mut(n) {
                inverse_in_place(poly, &t);
            }
            assert_eq!(batch_inv, seq_inv, "inverse b = {b}");
            assert_eq!(batch_inv, flat, "roundtrip b = {b}");
        }
    }

    #[test]
    fn pointwise_lazy_matches_canonical() {
        let q = 786433u64;
        let a: Vec<u64> = (0..256u64).map(|i| (i * 1337) % (2 * q)).collect();
        let b: Vec<u64> = (0..256u64).map(|i| (i * 7331 + 5) % (2 * q)).collect();
        let mut out = vec![0u64; 256];
        pointwise_lazy(&a, &b, &mut out, q);
        for i in 0..256 {
            assert!(out[i] < 2 * q);
            assert_eq!(
                out[i] % q,
                ((a[i] as u128 * b[i] as u128) % q as u128) as u64
            );
        }
    }
}

pub use baselines;
pub use cryptopim;
pub use modmath;
pub use ntt;
pub use pim;
pub use reliability;
pub use rlwe;
pub use service;
